//! Degraded-mesh certification: re-runs the channel-dependency analysis
//! against the mesh that remains after [`noc_types::FaultConfig`] permanent
//! faults (dead links and routers) are applied.
//!
//! Permanent faults change the routing relation: the simulator switches to
//! the [`RouteMask`] (shortest paths over the degraded graph, intersected
//! with the base algorithm where possible), so the healthy mesh's
//! certificate no longer says anything. This module answers three
//! questions, in order:
//!
//! 1. **Is every pair still routable?** If the dead set disconnects the
//!    live mesh, the configuration is [`DegradedVerdict::Unroutable`] and
//!    the sweep runner must skip it (the simulator would panic at
//!    construction).
//! 2. **Does the escape layer survive?** West-first cannot detour, so an
//!    escape-VC configuration whose required west-first path crosses a dead
//!    link is [`DegradedVerdict::EscapeSevered`]: routable, but the Duato
//!    certificate is gone.
//! 3. **Is the degraded CDG still acyclic / Duato-certifiable?** The masked
//!    routing admits detour turns the healthy algorithm forbade, so e.g. XY
//!    with a dead link generally *loses* its acyclicity certificate — an
//!    honest downgrade: on a degraded mesh, deadlock freedom must come from
//!    a recovery mechanism (the paper's point), not the routing function.

use crate::cdg::Cdg;
use crate::scc;
use crate::witness::Witness;
use crate::{escape_subgraph, CdgGraph, ProtocolVerdict, RoutingVerdict};
use noc_sim::fault::{DeadSet, RouteMask};
use noc_types::{Direction, NetConfig, NodeId};

/// Routing-level verdict for one configuration on its degraded mesh.
#[derive(Clone, Debug)]
pub enum DegradedVerdict {
    /// The dead set disconnects the live mesh: `src` cannot reach `dest`.
    /// The configuration cannot run at all.
    Unroutable { src: NodeId, dest: NodeId },
    /// Every pair is routable, but the west-first escape layer is not:
    /// `src` has no live west-first path to `dest`. Escape-VC
    /// configurations lose their Duato certificate.
    EscapeSevered { src: NodeId, dest: NodeId },
    /// The degraded CDG is acyclic.
    CertifiedAcyclic { channels: usize, edges: usize },
    /// The degraded CDG has cycles among regular VCs, but the (surviving)
    /// escape subnetwork satisfies Duato's condition.
    CertifiedEscape {
        channels: usize,
        edges: usize,
        escape_channels: usize,
    },
    /// No certificate: a concrete cyclic wait exists on the degraded mesh.
    Deadlockable {
        witness: Witness,
        channels: usize,
        edges: usize,
    },
}

impl DegradedVerdict {
    /// True only for the two certificate variants.
    pub fn certified(&self) -> bool {
        matches!(
            self,
            DegradedVerdict::CertifiedAcyclic { .. } | DegradedVerdict::CertifiedEscape { .. }
        )
    }

    /// True when the configuration can run at all (every pair routable).
    pub fn routable(&self) -> bool {
        !matches!(self, DegradedVerdict::Unroutable { .. })
    }
}

/// Certification report for one configuration on its degraded mesh.
#[derive(Clone, Debug)]
pub struct DegradedReport {
    /// One-line description of the analysed configuration.
    pub config: String,
    /// Dead physical links (each named once from its west/north endpoint).
    pub dead_links: Vec<(NodeId, Direction)>,
    /// Dead routers.
    pub dead_routers: Vec<NodeId>,
    /// Routing-level verdict on the degraded mesh.
    pub verdict: DegradedVerdict,
    /// Protocol-level verdict (unchanged by link faults: classes and `VNets`
    /// are a property of the protocol, not the topology).
    pub protocol: ProtocolVerdict,
}

impl DegradedReport {
    /// True when both layers are certified on the degraded mesh.
    pub fn certified(&self) -> bool {
        self.verdict.certified() && self.protocol.certified()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut s = format!("config: {}\n", self.config);
        let links: Vec<String> = self
            .dead_links
            .iter()
            .map(|(n, d)| format!("{}→{d}", n.0))
            .collect();
        let routers: Vec<String> = self.dead_routers.iter().map(|n| n.0.to_string()).collect();
        s.push_str(&format!(
            "faults: {} dead link(s) [{}], {} dead router(s) [{}]\n",
            links.len(),
            links.join(", "),
            routers.len(),
            routers.join(", ")
        ));
        match &self.verdict {
            DegradedVerdict::Unroutable { src, dest } => {
                s.push_str(&format!(
                    "degraded routing: UNROUTABLE — node {} cannot reach node {} \
                     on the live mesh\n",
                    src.0, dest.0
                ));
            }
            DegradedVerdict::EscapeSevered { src, dest } => {
                s.push_str(&format!(
                    "degraded routing: ESCAPE SEVERED — no live west-first path \
                     from node {} to node {}; the Duato escape certificate is void\n",
                    src.0, dest.0
                ));
            }
            DegradedVerdict::CertifiedAcyclic { channels, edges } => {
                s.push_str(&format!(
                    "degraded routing: CERTIFIED deadlock-free — degraded CDG acyclic \
                     ({channels} channels, {edges} dependencies)\n"
                ));
            }
            DegradedVerdict::CertifiedEscape {
                channels,
                edges,
                escape_channels,
            } => {
                s.push_str(&format!(
                    "degraded routing: CERTIFIED deadlock-free — Duato escape condition \
                     holds on the degraded mesh ({channels} channels, {edges} \
                     dependencies; escape subnetwork of {escape_channels} channels)\n"
                ));
            }
            DegradedVerdict::Deadlockable {
                witness,
                channels,
                edges,
            } => {
                s.push_str(&format!(
                    "degraded routing: NOT certifiable — minimal cyclic witness of \
                     {} channels (degraded CDG: {channels} channels, {edges} \
                     dependencies); deadlock freedom must come from a recovery \
                     mechanism\n",
                    witness.cycle.len()
                ));
                s.push_str(&witness.describe());
                s.push_str(&witness.render_ascii());
            }
        }
        s.push_str(&crate::render_protocol(&self.protocol));
        s.push_str(if self.certified() {
            "verdict: CERTIFIED DEADLOCK-FREE (degraded)\n"
        } else {
            "verdict: NOT CERTIFIED (degraded)\n"
        });
        s
    }
}

/// Resolves `cfg`'s permanent faults, checks routability of the live mesh,
/// and certifies the degraded channel dependency graph. With no permanent
/// faults this reduces exactly to [`crate::certify`] (same CDG, verdict
/// mapped onto [`DegradedVerdict`]).
pub fn certify_degraded(cfg: &NetConfig) -> DegradedReport {
    if !cfg.fault.has_permanent() {
        let report = crate::certify(cfg);
        let verdict = match report.routing {
            RoutingVerdict::CertifiedAcyclic { channels, edges } => {
                DegradedVerdict::CertifiedAcyclic { channels, edges }
            }
            RoutingVerdict::CertifiedEscape {
                channels,
                edges,
                escape_channels,
            } => DegradedVerdict::CertifiedEscape {
                channels,
                edges,
                escape_channels,
            },
            RoutingVerdict::Deadlockable {
                witness,
                channels,
                edges,
            } => DegradedVerdict::Deadlockable {
                witness,
                channels,
                edges,
            },
        };
        return DegradedReport {
            config: report.config,
            dead_links: Vec::new(),
            dead_routers: Vec::new(),
            verdict,
            protocol: report.protocol,
        };
    }

    let dead = DeadSet::resolve(cfg);
    let (cols, rows) = (cfg.cols, cfg.rows);
    let dead_links = dead.dead_link_list(cols, rows);
    let dead_routers: Vec<NodeId> = (0..cfg.num_nodes())
        .filter(|&i| dead.router_dead(i))
        .map(|i| NodeId(i as u16))
        .collect();
    let config = format!(
        "{} + {} dead link(s), {} dead router(s)",
        crate::describe_config(cfg),
        dead_links.len(),
        dead_routers.len()
    );
    let protocol = crate::protocol::analyze(cfg);
    let done = |verdict| DegradedReport {
        config: config.clone(),
        dead_links: dead_links.clone(),
        dead_routers: dead_routers.clone(),
        verdict,
        protocol: protocol.clone(),
    };

    let mask = match RouteMask::build(cols, rows, &dead) {
        Ok(m) => m,
        Err(u) => {
            return done(DegradedVerdict::Unroutable {
                src: u.src,
                dest: u.dest,
            })
        }
    };
    // The escape layer survives only if west-first still reaches everywhere
    // over live links; since west-first cannot detour, a severed path voids
    // the Duato certificate (the config still *runs* — on regular VCs).
    let (wf, severed) = if cfg.routing.has_escape() {
        match RouteMask::build_west_first(cols, rows, &dead) {
            Ok(m) => (Some(m), None),
            Err(u) => (None, Some((u.src, u.dest))),
        }
    } else {
        (None, None)
    };

    let cdg = Cdg::build_degraded(cfg, &dead, &mask, wf.as_ref());
    let g = CdgGraph(&cdg);
    let channels = cdg.channel_count();
    let edges = cdg.edge_count();

    let verdict = if !scc::has_cycle(&g) {
        DegradedVerdict::CertifiedAcyclic { channels, edges }
    } else if let Some((src, dest)) = severed {
        DegradedVerdict::EscapeSevered { src, dest }
    } else if wf.is_some()
        && !cdg.escape_leaks_to_normal()
        && !scc::has_cycle(&escape_subgraph(&cdg))
    {
        DegradedVerdict::CertifiedEscape {
            channels,
            edges,
            escape_channels: cdg.escape_channel_ids().len(),
        }
    } else {
        let cycle_ids = scc::minimal_cycle(&g).expect("cyclic CDG must yield a minimal cycle");
        DegradedVerdict::Deadlockable {
            witness: Witness {
                cycle: cycle_ids.into_iter().map(|i| cdg.channel(i)).collect(),
                cols,
                rows,
            },
            channels,
            edges,
        }
    };
    done(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{BaseRouting, FaultConfig, RoutingAlgo};

    fn cfg(routing: RoutingAlgo, fault: FaultConfig) -> NetConfig {
        NetConfig::synth(4, 4)
            .with_routing(routing)
            .with_fault(fault)
    }

    #[test]
    fn no_permanent_faults_reduces_to_the_healthy_certificate() {
        let healthy = cfg(
            RoutingAlgo::Uniform(BaseRouting::Xy),
            FaultConfig::transient(0.01),
        );
        let report = certify_degraded(&healthy);
        assert!(report.dead_links.is_empty());
        assert!(matches!(
            report.verdict,
            DegradedVerdict::CertifiedAcyclic { .. }
        ));
        assert!(report.certified());
    }

    #[test]
    fn disconnected_corner_is_unroutable() {
        let report = certify_degraded(&cfg(
            RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
            FaultConfig::default().with_dead_links(vec![
                (NodeId(0), Direction::East),
                (NodeId(0), Direction::South),
            ]),
        ));
        match report.verdict {
            DegradedVerdict::Unroutable { src, dest } => {
                assert!(src == NodeId(0) || dest == NodeId(0));
            }
            other => panic!("expected Unroutable, got {other:?}"),
        }
        assert!(!report.certified());
    }

    #[test]
    fn dead_row_link_severs_the_escape_layer() {
        // West-first must cross 1→2 for the (1, 2) pair; no detour exists.
        let report = certify_degraded(&cfg(
            RoutingAlgo::EscapeVc {
                normal: BaseRouting::AdaptiveMinimal,
            },
            FaultConfig::default().with_dead_links(vec![(NodeId(1), Direction::East)]),
        ));
        assert!(
            matches!(report.verdict, DegradedVerdict::EscapeSevered { .. }),
            "got {:?}",
            report.verdict
        );
        assert!(report.verdict.routable(), "mesh is still connected");
        assert!(!report.certified());
    }

    #[test]
    fn adaptive_on_a_degraded_mesh_yields_a_witness() {
        let report = certify_degraded(&cfg(
            RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
            FaultConfig::default().with_dead_links(vec![(NodeId(5), Direction::East)]),
        ));
        match &report.verdict {
            DegradedVerdict::Deadlockable { witness, .. } => {
                assert!(witness.cycle.len() >= 2);
            }
            other => panic!("expected Deadlockable, got {other:?}"),
        }
        // The report names the dead link.
        assert_eq!(report.dead_links, vec![(NodeId(5), Direction::East)]);
        assert!(report.render().contains("NOT certifiable"));
    }

    #[test]
    fn dead_router_in_the_interior_stays_routable() {
        let report = certify_degraded(&cfg(
            RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
            FaultConfig::default().with_dead_routers(vec![NodeId(5)]),
        ));
        assert!(report.verdict.routable(), "got {:?}", report.verdict);
        assert_eq!(report.dead_routers, vec![NodeId(5)]);
        // All four of the router's links are dead with it.
        assert_eq!(report.dead_links.len(), 4);
    }

    #[test]
    fn degraded_cdg_omits_dead_channels() {
        let fault = FaultConfig::default().with_dead_links(vec![(NodeId(5), Direction::East)]);
        let c = cfg(RoutingAlgo::Uniform(BaseRouting::Xy), fault);
        let dead = DeadSet::resolve(&c);
        let mask = RouteMask::build(c.cols, c.rows, &dead).unwrap();
        let cdg = Cdg::build_degraded(&c, &dead, &mask, None);
        assert!(cdg
            .channels()
            .iter()
            .all(|ch| !(ch.from.to_node(c.cols) == NodeId(5) && ch.dir == Direction::East)));
        assert!(cdg
            .channels()
            .iter()
            .all(|ch| !(ch.from.to_node(c.cols) == NodeId(6) && ch.dir == Direction::West)));
        // The healthy build has exactly two more channels (one per lost
        // direction, times one vnet).
        let healthy = Cdg::build(&c);
        assert_eq!(healthy.channel_count(), cdg.channel_count() + 2);
    }
}
