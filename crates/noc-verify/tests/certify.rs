//! Acceptance-criteria lock: verdicts for the paper's configurations.

use noc_types::{BaseRouting, NetConfig, RoutingAlgo};
use noc_verify::{certify, ProtocolVerdict, RoutingVerdict, VcClass};

fn synth(k: u8, routing: RoutingAlgo) -> NetConfig {
    NetConfig::synth(k, 4).with_routing(routing)
}

#[test]
fn xy_is_certified_acyclic() {
    for k in [4u8, 8] {
        let r = certify(&synth(k, RoutingAlgo::Uniform(BaseRouting::Xy)));
        assert!(
            matches!(r.routing, RoutingVerdict::CertifiedAcyclic { .. }),
            "{}",
            r.render()
        );
        assert!(r.certified());
    }
}

#[test]
fn west_first_is_certified_acyclic() {
    for k in [4u8, 8] {
        let r = certify(&synth(k, RoutingAlgo::Uniform(BaseRouting::WestFirst)));
        assert!(
            matches!(r.routing, RoutingVerdict::CertifiedAcyclic { .. }),
            "{}",
            r.render()
        );
    }
}

#[test]
fn escape_vc_composite_is_certified_by_duato() {
    for k in [4u8, 8] {
        let r = certify(&synth(
            k,
            RoutingAlgo::EscapeVc {
                normal: BaseRouting::AdaptiveMinimal,
            },
        ));
        assert!(
            matches!(r.routing, RoutingVerdict::CertifiedEscape { .. }),
            "{}",
            r.render()
        );
        assert!(r.certified());
    }
}

#[test]
fn adaptive_minimal_yields_a_concrete_witness() {
    for k in [4u8, 8] {
        let r = certify(&synth(
            k,
            RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
        ));
        let RoutingVerdict::Deadlockable { witness, .. } = &r.routing else {
            panic!("expected witness, got {}", r.render());
        };
        // The minimal cyclic wait on a mesh under unrestricted minimal
        // adaptive routing is a 2x2 turn square: four channels.
        assert_eq!(witness.cycle.len(), 4, "{}", witness.describe());
        // The witness must be a genuine cycle: each hop ends where the next
        // begins, and the last feeds the first.
        for (i, ch) in witness.cycle.iter().enumerate() {
            let next = &witness.cycle[(i + 1) % witness.cycle.len()];
            assert_eq!(ch.to(k, k), next.from, "{}", witness.describe());
        }
        assert!(!r.certified());
        let art = witness.render_ascii();
        assert!(art.contains('+'), "{art}");
    }
}

#[test]
fn oblivious_minimal_is_also_deadlockable() {
    let r = certify(&synth(
        4,
        RoutingAlgo::Uniform(BaseRouting::ObliviousMinimal),
    ));
    assert!(!r.routing.certified(), "{}", r.render());
}

#[test]
fn escape_witness_channels_are_normal_class() {
    // Without an escape VC the witness must live entirely in normal VCs.
    let r = certify(&synth(
        4,
        RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
    ));
    let RoutingVerdict::Deadlockable { witness, .. } = &r.routing else {
        panic!("expected witness");
    };
    assert!(witness
        .cycle
        .iter()
        .all(|ch| matches!(ch.class, VcClass::Normal(_))));
}

#[test]
fn full_system_six_vnets_xy_is_fully_certified() {
    let r = certify(
        &NetConfig::full_system(4, 6, 2).with_routing(RoutingAlgo::Uniform(BaseRouting::Xy)),
    );
    assert!(r.certified(), "{}", r.render());
    assert!(matches!(
        r.protocol,
        ProtocolVerdict::Acyclic { vnets: 6, deps: 2 }
    ));
}

#[test]
fn full_system_single_vnet_fails_protocol_layer() {
    let r = certify(
        &NetConfig::full_system(4, 1, 2).with_routing(RoutingAlgo::Uniform(BaseRouting::Xy)),
    );
    assert!(r.routing.certified(), "{}", r.render());
    assert!(!r.certified(), "{}", r.render());
    assert!(matches!(r.protocol, ProtocolVerdict::Cyclic { .. }));
}

#[test]
fn report_renders_without_panicking_on_every_verdict() {
    for routing in [
        RoutingAlgo::Uniform(BaseRouting::Xy),
        RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
        RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        },
    ] {
        let r = certify(&synth(4, routing));
        let text = r.render();
        assert!(text.starts_with("config: "), "{text}");
        assert!(text.contains("verdict: "), "{text}");
    }
}
