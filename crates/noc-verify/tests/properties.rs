//! Property tests for the certifier's two structured outputs:
//!
//! 1. **Witness minimality.** A [`Witness`] cycle from a `Deadlockable`
//!    verdict must be a genuine *minimal* cyclic dependency: distinct
//!    channels, every consecutive pair an actual CDG edge, and — because
//!    [`noc_verify`]'s cycle extraction is a BFS-shortest cycle inside the
//!    smallest cyclic SCC — chordless. Chordlessness is the strong form of
//!    minimality: any CDG edge between non-consecutive witness channels
//!    would close a strictly shorter cycle, so its absence proves no edge
//!    of the witness can be dropped.
//!
//! 2. **`certify_degraded` monotone sub-properties.** The full verdict
//!    *rank* is deliberately NOT monotone under growing dead-link sets, and
//!    this file documents why rather than asserting a falsehood: the
//!    degraded [`RouteMask`] admits detour turns the healthy algorithm
//!    forbade, so killing a link can *remove* CDG channels and edges — a
//!    cyclic degraded CDG can become acyclic when one more link dies (the
//!    cycle's channels no longer exist), promoting `Deadlockable` back to
//!    `CertifiedAcyclic`. What IS monotone, and what the sweep runner
//!    actually relies on, are two sub-properties:
//!
//!    * **Routability only degrades.** Shortest-path reachability over the
//!      live mesh is monotone-decreasing in the dead set: once some pair is
//!      disconnected, no superset reconnects it.
//!    * **A severed escape layer stays severed.** West-first cannot detour,
//!      so once its mask fails to cover some pair, every superset also
//!      fails — and therefore no superset can ever earn the
//!      `CertifiedEscape` (Duato) verdict again.

use noc_types::{Coord, Direction, FaultConfig, NetConfig, NodeId};
use noc_verify::{certify, certify_degraded, Cdg, DegradedVerdict, RoutingVerdict, Witness};
use proptest::prelude::*;

/// Maps each witness channel to its id in `cdg`, panicking (test failure)
/// if the witness mentions a channel the CDG does not contain.
fn witness_ids(cdg: &Cdg, witness: &Witness) -> Vec<usize> {
    witness
        .cycle
        .iter()
        .map(|ch| {
            cdg.channels()
                .iter()
                .position(|c| c == ch)
                .unwrap_or_else(|| panic!("witness channel {ch:?} not in the CDG"))
        })
        .collect()
}

/// Asserts the witness is a distinct, closed, chordless CDG cycle.
fn assert_minimal_cycle(cdg: &Cdg, witness: &Witness, what: &str) {
    let ids = witness_ids(cdg, witness);
    let n = ids.len();
    assert!(n >= 2, "{what}: a cyclic wait needs at least two channels");

    // Distinctness: a channel appearing twice would mean the "cycle" is a
    // lasso, not a cycle.
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), n, "{what}: witness repeats a channel");

    // Every consecutive pair (wrapping) is a real dependency edge, and —
    // chordlessness — the ONLY witness member any witness channel depends
    // on is its successor. An edge to any other member would close a
    // strictly shorter cycle, contradicting minimality.
    for (k, &id) in ids.iter().enumerate() {
        let next = ids[(k + 1) % n];
        let succ = cdg.successors(id);
        assert!(
            succ.contains(&next),
            "{what}: witness step {k} is not a CDG edge"
        );
        let members_reached: Vec<usize> =
            succ.iter().copied().filter(|s| ids.contains(s)).collect();
        assert_eq!(
            members_reached,
            vec![next],
            "{what}: chord from witness channel {k} — a shorter cycle exists"
        );
    }

    // Edge-necessity, spelled out: drop any single witness edge and the
    // subgraph induced on the witness channels is acyclic (it was exactly
    // the one cycle, by chordlessness above).
    for dropped in 0..n {
        let mut reach = vec![false; n];
        let mut stack = vec![(dropped + 1) % n];
        while let Some(k) = stack.pop() {
            if k == dropped || reach[k] {
                continue;
            }
            reach[k] = true;
            stack.push((k + 1) % n);
        }
        assert!(
            !reach[dropped],
            "{what}: witness survives losing edge {dropped}"
        );
    }
}

/// Every `Deadlockable` verdict across the standard certification matrix
/// carries a minimal (distinct, closed, chordless) witness cycle.
#[test]
fn matrix_witnesses_are_minimal_cycles() {
    let mut checked = 0;
    for row in noc_verify::matrix::all_configs() {
        if let RoutingVerdict::Deadlockable { witness, .. } = certify(&row.cfg).routing {
            let cdg = Cdg::build(&row.cfg);
            assert_minimal_cycle(&cdg, &witness, row.why);
            checked += 1;
        }
    }
    assert!(checked >= 2, "matrix lost its uncertified rows");
}

/// A degraded-mesh witness is minimal *with respect to the degraded CDG*:
/// rebuild that CDG exactly the way `certify_degraded` does and run the
/// full chordless-cycle check against it.
#[test]
fn degraded_witness_is_minimal_in_the_degraded_cdg() {
    use noc_sim::fault::{DeadSet, RouteMask};

    let k = 4u8;
    let cfg = NetConfig::synth(k, 1)
        .with_fault(FaultConfig::default().with_dead_links(vec![(NodeId(5), Direction::East)]));
    let report = certify_degraded(&cfg);
    let DegradedVerdict::Deadlockable { witness, .. } = &report.verdict else {
        panic!(
            "adaptive 4x4 with one dead link should stay deadlockable, got {:?}",
            report.verdict
        );
    };
    let dead = DeadSet::resolve(&cfg);
    let mask = RouteMask::build(k, k, &dead).expect("one dead link keeps a 4x4 mesh routable");
    let cdg = Cdg::build_degraded(&cfg, &dead, &mask, None);
    assert_minimal_cycle(&cdg, witness, "adaptive 4x4, one dead link");
}

/// Valid dead-link sets for a `k`×`k` mesh, built from raw `(node, axis)`
/// draws: each link is canonically named from its west (East-axis) or
/// north (South-axis) endpoint and endpoint-duplicates are dropped, which
/// is exactly the shape [`FaultConfig::validate`] demands.
fn dead_links_from_raw(raw: &[(u16, u8)], k: u8) -> Vec<(NodeId, Direction)> {
    let mut links: Vec<(NodeId, Direction)> = Vec::new();
    for &(node, axis) in raw {
        let node = NodeId(node % (u16::from(k) * u16::from(k)));
        let dir = if axis % 2 == 0 {
            Direction::East
        } else {
            Direction::South
        };
        let on_mesh = dir.step(node.to_coord(k), k, k).is_some();
        if on_mesh && !links.contains(&(node, dir)) {
            links.push((node, dir));
        }
    }
    links
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deadlockable witnesses stay minimal on randomly degraded meshes,
    /// where the masked routing produces CDGs no healthy config exhibits.
    #[test]
    fn degraded_witnesses_are_minimal_cycles(
        raw in prop::collection::vec((0u16..64, 0u8..2), 1..6),
        vcs in 1u8..3,
    ) {
        let k = 4u8;
        let links = dead_links_from_raw(&raw, k);
        let cfg = NetConfig::synth(k, vcs)
            .with_fault(FaultConfig::default().with_dead_links(links));
        prop_assert!(cfg.fault.validate(k, k).is_ok());
        let report = certify_degraded(&cfg);
        if let DegradedVerdict::Deadlockable { witness, .. } = &report.verdict {
            // The witness channels must at least live on the mesh; the
            // full chordless check needs the degraded CDG, which is not
            // re-exported — closedness is checked structurally instead.
            prop_assert!(witness.cycle.len() >= 2);
            let mut seen: Vec<_> = Vec::new();
            for ch in &witness.cycle {
                prop_assert!(!seen.contains(ch), "witness repeats a channel");
                seen.push(*ch);
            }
            for ch in &witness.cycle {
                let c: Coord = ch.from;
                prop_assert!(c.x < k && c.y < k);
                prop_assert!(ch.dir.step(ch.from, k, k).is_some());
            }
        }
    }

    /// Routability is monotone-decreasing: grow the dead set one link at a
    /// time and the `routable()` bit may flip true→false but never back.
    #[test]
    fn routability_only_degrades_under_growing_dead_sets(
        raw in prop::collection::vec((0u16..64, 0u8..2), 1..10),
        adaptive in 0u8..2,
    ) {
        let k = 3u8;
        let routing = if adaptive == 0 {
            noc_types::RoutingAlgo::Uniform(noc_types::BaseRouting::Xy)
        } else {
            noc_types::RoutingAlgo::Uniform(noc_types::BaseRouting::AdaptiveMinimal)
        };
        let links = dead_links_from_raw(&raw, k);
        let mut lost_routability = false;
        for prefix in 1..=links.len() {
            let cfg = NetConfig::synth(k, 1)
                .with_routing(routing)
                .with_fault(FaultConfig::default().with_dead_links(links[..prefix].to_vec()));
            let routable = certify_degraded(&cfg).verdict.routable();
            if lost_routability {
                prop_assert!(
                    !routable,
                    "superset of an unroutable dead set became routable"
                );
            }
            lost_routability = !routable;
        }
    }

    /// Once the west-first escape layer is severed (or the mesh outright
    /// unroutable), no superset of that dead set is ever `CertifiedEscape`
    /// again. (`CertifiedAcyclic` remains possible — see the module doc on
    /// why the full verdict rank is not monotone.)
    #[test]
    fn severed_escape_never_recertifies_for_supersets(
        raw in prop::collection::vec((0u16..64, 0u8..2), 1..10),
    ) {
        let k = 3u8;
        let routing = noc_types::RoutingAlgo::EscapeVc {
            normal: noc_types::BaseRouting::AdaptiveMinimal,
        };
        let links = dead_links_from_raw(&raw, k);
        let mut severed = false;
        for prefix in 1..=links.len() {
            let cfg = NetConfig::synth(k, 2)
                .with_routing(routing)
                .with_fault(FaultConfig::default().with_dead_links(links[..prefix].to_vec()));
            let verdict = certify_degraded(&cfg).verdict;
            if severed {
                prop_assert!(
                    !matches!(verdict, DegradedVerdict::CertifiedEscape { .. }),
                    "Duato certificate returned after the escape layer was severed"
                );
            }
            severed = severed
                || matches!(
                    verdict,
                    DegradedVerdict::EscapeSevered { .. } | DegradedVerdict::Unroutable { .. }
                );
        }
    }
}
