//! Watchdog black-box schema tests.
//!
//! A seeded forced deadlock (the recovery sweep's ADAPT wedge point) is
//! driven until the watchdog trips, the dump is captured, and then:
//!
//! * the nested JSON reader must parse it and find every field of the
//!   `noc-blackbox-v1` schema (DESIGN.md §9) with the right shape;
//! * writing it to disk and reading it back must round-trip;
//! * the dump must be byte-identical to the golden copy in
//!   `tests/golden/blackbox_wedge.json` — the sim is deterministic, so any
//!   diff is either a schema change (regenerate with
//!   `NOC_REGEN_GOLDEN=1 cargo test -p noc-experiments --test
//!   blackbox_schema`) or a determinism regression (fix the sim).

use noc_experiments::jsonio::{parse_value, JsonValue};
use noc_experiments::Scheme;
use noc_sim::{watchdog, Sim};
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::NetConfig;
use std::path::PathBuf;

/// Runs the seeded wedge scenario to a watchdog trip and returns the
/// captured black box.
fn wedged_blackbox() -> watchdog::BlackBox {
    let scheme = Scheme::Adaptive;
    let cfg = scheme.configure(NetConfig::synth(4, 1)).with_seed(0xA11CE);
    let wl = SyntheticWorkload::new(
        TrafficPattern::UniformRandom,
        0.30,
        cfg.cols,
        cfg.rows,
        cfg.warmup,
        0xA11CE,
    );
    let mech = scheme.mechanism(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), mech);
    sim.net.enable_flight_recorder(64);
    for _ in 0..40 {
        sim.run(256);
        if watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
            return watchdog::BlackBox::capture(&sim.net, "ADAPT", &sim.mech.debug_state());
        }
    }
    panic!("seeded ADAPT wedge scenario failed to trip the watchdog in 10240 cycles");
}

fn u64_of(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("field '{key}' missing or not an integer"))
}

#[test]
fn forced_deadlock_dump_matches_the_v1_schema() {
    let bb = wedged_blackbox();
    let v = parse_value(bb.to_json()).expect("black-box dump must parse as nested JSON");

    assert_eq!(
        v.get("schema").and_then(JsonValue::as_str),
        Some("noc-blackbox-v1")
    );
    let cycle = u64_of(&v, "cycle");
    let last_progress = u64_of(&v, "last_progress");
    let quiescent = u64_of(&v, "quiescent_for");
    assert!(cycle > last_progress);
    assert!(quiescent >= watchdog::DEFAULT_STUCK_THRESHOLD);
    assert_eq!(cycle - last_progress, quiescent);

    let cfg = v.get("config").expect("config object");
    assert_eq!(u64_of(cfg, "cols"), 4);
    assert_eq!(u64_of(cfg, "rows"), 4);
    assert_eq!(cfg.get("scheme").and_then(JsonValue::as_str), Some("ADAPT"));
    assert_eq!(
        cfg.get("digest").and_then(JsonValue::as_str).map(str::len),
        Some(16),
        "digest is 16 hex chars"
    );
    assert!(cfg.get("fault").and_then(JsonValue::as_str).is_some());

    assert!(u64_of(&v, "flits_in_network") > 0, "a wedge holds flits");

    let occupancy = v
        .get("occupancy")
        .and_then(JsonValue::as_array)
        .expect("occupancy array");
    assert!(!occupancy.is_empty());
    for slot in occupancy {
        for key in ["node", "port", "vc", "len", "packet"] {
            assert!(slot.get(key).is_some(), "occupancy entry missing '{key}'");
        }
    }

    let blocked = v
        .get("blocked_heads")
        .and_then(JsonValue::as_array)
        .expect("blocked_heads array");
    assert!(!blocked.is_empty(), "a wedged network has blocked heads");

    // A genuine deadlock carries its wait-for cycle witness: a closed chain
    // of at least two VCs.
    let wait = v
        .get("wait_cycle")
        .and_then(JsonValue::as_array)
        .expect("wedge must yield a wait-cycle witness, not null");
    assert!(wait.len() >= 2);
    for w in wait {
        for key in ["node", "port", "vc"] {
            assert!(w.get(key).is_some(), "wait_cycle entry missing '{key}'");
        }
    }

    assert!(v.get("mechanism").and_then(JsonValue::as_str).is_some());
    assert!(
        v.get("fault_counters").unwrap().is_null(),
        "no fault layer in this scenario"
    );
    let moves = v
        .get("recent_moves")
        .and_then(JsonValue::as_array)
        .expect("recent_moves array");
    assert!(!moves.is_empty(), "flight recorder was enabled");
}

#[test]
fn dump_roundtrips_through_disk() {
    let bb = wedged_blackbox();
    let dir = std::env::temp_dir().join(format!("seec_bb_schema_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // `BlackBox::write` creates missing parents itself — point it at a
    // nested path that does not exist yet, like the sweep's dump dir.
    let path = dir.join("nested").join("bb.json");
    bb.write(&path).expect("write must create parent dirs");
    let reread = std::fs::read_to_string(&path).unwrap();
    assert_eq!(reread, bb.to_json());
    assert_eq!(parse_value(&reread), parse_value(bb.to_json()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dump_is_byte_identical_to_the_golden_file() {
    let json = wedged_blackbox().to_json().to_string();
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("blackbox_wedge.json");
    if std::env::var_os("NOC_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &json).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "golden file {} unreadable ({e}); regenerate with NOC_REGEN_GOLDEN=1",
            golden.display()
        )
    });
    assert_eq!(
        json, want,
        "black-box dump drifted from the golden copy — schema change or \
         determinism regression; if intentional, regenerate with \
         NOC_REGEN_GOLDEN=1 cargo test -p noc-experiments --test blackbox_schema"
    );
}
