//! Idle-cycle skipping is observationally invisible.
//!
//! `Sim::run` with `idle_skip` on must produce byte-identical statistics and
//! an identical engine-state digest to the plain cycle-by-cycle loop, on
//! every class of configuration the sweep runner can batch: healthy bursty
//! traffic, transient link faults (flit-level retransmission active), a
//! dynamic chaos schedule with runtime recovery armed, and steady synthetic
//! traffic (whose conservative `next_activity` pins the clock — the veto
//! path). The comparison runs in slices so a divergence is caught at the
//! first slice boundary it reaches, not just at the end.

use noc_sim::{NoMechanism, Sim};
use noc_traffic::{BurstWorkload, SyntheticWorkload, TrafficPattern};
use noc_types::{
    BaseRouting, Direction, FaultConfig, FaultSchedule, NetConfig, NodeId, RecoveryConfig,
    RoutingAlgo,
};

const SLICES: u64 = 8;
const SLICE_CYCLES: u64 = 1_000;

/// Runs `make()` twice — idle skipping off and on — in lockstep slices and
/// asserts digest + stats equality at every slice boundary.
fn assert_skip_invisible(label: &str, make: &dyn Fn() -> Sim) {
    let mut plain = make();
    let mut skipping = make().with_idle_skip(true);
    assert!(!plain.idle_skip, "baseline must step every cycle");
    for slice in 0..SLICES {
        plain.run(SLICE_CYCLES);
        skipping.run(SLICE_CYCLES);
        assert_eq!(
            plain.net.state_digest(),
            skipping.net.state_digest(),
            "{label}: engine state diverged by the end of slice {slice}"
        );
    }
    assert!(
        skipping.skipped_cycles > 0 || label.contains("steady"),
        "{label}: the skipper never fired — the scenario no longer \
         exercises idle skipping"
    );
    let a = format!("{:?}", plain.finish());
    let b = format!("{:?}", skipping.finish());
    assert_eq!(a, b, "{label}: final statistics diverged");
}

fn bursty(cols: u8, rows: u8, rate: f64, seed: u64) -> Box<BurstWorkload> {
    Box::new(BurstWorkload::new(
        TrafficPattern::UniformRandom,
        rate,
        512,
        48,
        cols,
        rows,
        0,
        seed,
    ))
}

#[test]
fn skip_is_invisible_on_healthy_bursty_traffic() {
    assert_skip_invisible("healthy bursty", &|| {
        let mut cfg = NetConfig::synth(4, 2)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
            .with_seed(11);
        cfg.warmup = 100;
        let wl = bursty(cfg.cols, cfg.rows, 0.25, 11);
        Sim::new(cfg, wl, Box::new(NoMechanism))
    });
}

#[test]
fn skip_is_invisible_under_transient_faults() {
    // Flit corruption keeps the link-level retransmission layer live: its
    // unacked windows and wire wheels must all veto or bound the jump.
    assert_skip_invisible("transient faults", &|| {
        let fault = FaultConfig {
            transient_rate: 0.02,
            fault_seed: 0xD1CE,
            ..FaultConfig::default()
        };
        let mut cfg = NetConfig::synth(4, 2)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
            .with_seed(23)
            .with_fault(fault);
        cfg.warmup = 0;
        let wl = bursty(cfg.cols, cfg.rows, 0.20, 23);
        Sim::new(cfg, wl, Box::new(NoMechanism))
    });
}

#[test]
fn skip_is_invisible_under_chaos_schedule_with_recovery() {
    // A mid-run link flap plus armed drain/e2e recovery: the jump must stop
    // at every scheduled event and stand down whenever recovery or the
    // end-to-end retransmission tables hold state.
    assert_skip_invisible("chaos + recovery", &|| {
        let fault = FaultConfig::default().with_schedule(FaultSchedule::link_flap(
            NodeId(5),
            Direction::East,
            1_500,
            4_200,
        ));
        let mut cfg = NetConfig::synth(4, 2)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
            .with_seed(37)
            .with_fault(fault)
            .with_recovery(RecoveryConfig::drain().with_e2e(800, 20));
        cfg.warmup = 0;
        let wl = bursty(cfg.cols, cfg.rows, 0.15, 37);
        Sim::new(cfg, wl, Box::new(NoMechanism))
    });
}

#[test]
fn skip_is_invisible_on_steady_synthetic_traffic() {
    // SyntheticWorkload draws RNG per node per cycle, so its conservative
    // `next_activity` pins the clock: the skipper must never fire, and the
    // run must stay identical to the plain loop.
    assert_skip_invisible("steady synthetic", &|| {
        let cfg = NetConfig::synth(4, 2)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
            .with_seed(41);
        let wl = Box::new(SyntheticWorkload::new(
            TrafficPattern::UniformRandom,
            0.10,
            cfg.cols,
            cfg.rows,
            cfg.warmup,
            41,
        ));
        let mut sim = Sim::new(cfg, wl, Box::new(NoMechanism));
        sim.net.stats.measure_start = sim.net.cfg.warmup;
        sim
    });
}

#[test]
fn steady_synthetic_never_skips() {
    let cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(41);
    let wl = Box::new(SyntheticWorkload::new(
        TrafficPattern::UniformRandom,
        0.10,
        cfg.cols,
        cfg.rows,
        cfg.warmup,
        41,
    ));
    let mut sim = Sim::new(cfg, wl, Box::new(NoMechanism)).with_idle_skip(true);
    sim.run(2_000);
    assert_eq!(
        sim.skipped_cycles, 0,
        "a per-cycle RNG workload must pin the clock"
    );
}
