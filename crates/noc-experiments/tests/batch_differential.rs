//! Lockstep-batched sweeps are byte-identical to scalar sweeps.
//!
//! The sweep runner groups missing points into shape-compatible chunks and
//! drives each chunk through one `noc_sim::LockstepBatch`. This test runs
//! the same mixed-scheme point set twice through the public runner — once
//! with a lockstep width of 4, once with width 1 (the pre-batching scalar
//! path) — and asserts the recorded checkpoint rows match byte for byte.
//! Any skew in per-lane cycle sequencing, RNG streams or stats accounting
//! shows up here as a row diff naming the diverging point.

use noc_experiments::runner::Scheme;
use noc_experiments::sweep::{run_sweep_with_width, Checkpoint, FaultPoint};
use noc_sim::ShapeKey;
use noc_traffic::TrafficPattern;
use noc_types::{FaultConfig, RecoveryConfig};
use std::collections::HashMap;
use std::path::PathBuf;

fn point(scheme: Scheme, rate: f64, transient: f64, seed: u64) -> FaultPoint {
    FaultPoint {
        series: "batch-diff",
        scheme,
        k: 4,
        vcs: 4,
        pattern: TrafficPattern::UniformRandom,
        rate,
        cycles: 2_000,
        seed,
        fault: FaultConfig::transient(transient),
        recovery: RecoveryConfig::default(),
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("seec_batchdiff_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn sorted_rows(ckpt: &Checkpoint) -> Vec<String> {
    let mut rows: Vec<String> = ckpt
        .rows()
        .iter()
        .map(|r| {
            // BTreeMap-backed rows render with stable field order.
            format!("{r:?}")
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn batched_sweep_rows_match_scalar_sweep_byte_for_byte() {
    // Mixed schemes, rates, seeds and fault scenarios — the batch the
    // runner actually produces, including non-quiescent mechanisms (SEEC)
    // on which lockstep lanes run but idle skipping stands down.
    let points = vec![
        point(Scheme::Xy, 0.05, 0.0, 1),
        point(Scheme::WestFirst, 0.08, 0.0, 2),
        point(Scheme::Xy, 0.10, 0.01, 3),
        point(Scheme::seec(), 0.05, 0.0, 4),
        point(Scheme::seec(), 0.08, 0.01, 5),
        point(Scheme::mseec(), 0.05, 0.0, 6),
        point(Scheme::WestFirst, 0.05, 0.02, 7),
        point(Scheme::mseec(), 0.08, 0.02, 8),
    ];
    // The comparison only bites if the width-4 run really forms multi-lane
    // batches: assert the point set contains shape-compatible groups.
    let mut groups: HashMap<u64, usize> = HashMap::new();
    for p in &points {
        *groups
            .entry(ShapeKey::of(&p.config()).digest())
            .or_insert(0) += 1;
    }
    assert!(
        groups.values().any(|&n| n >= 2),
        "no two points share a shape — the batched path would degenerate \
         to scalar and this differential would test nothing"
    );

    let dir = tmpdir("rows");
    let batched = Checkpoint::open(&dir.join("batched.ckpt.jsonl")).unwrap();
    let outcome = run_sweep_with_width(&points, &batched, None, &dir, 4);
    assert_eq!(outcome.executed, points.len());
    assert_eq!(outcome.failed, 0);

    let scalar = Checkpoint::open(&dir.join("scalar.ckpt.jsonl")).unwrap();
    let outcome = run_sweep_with_width(&points, &scalar, None, &dir, 1);
    assert_eq!(outcome.executed, points.len());
    assert_eq!(outcome.failed, 0);

    let (b, s) = (sorted_rows(&batched), sorted_rows(&scalar));
    assert_eq!(b.len(), points.len());
    assert_eq!(b, s, "lockstep-batched sweep rows diverged from scalar");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_sweep_resumes_into_scalar_and_back() {
    // A sweep interrupted under one width must resume cleanly under
    // another: keys don't depend on the execution strategy.
    let points = vec![
        point(Scheme::Xy, 0.05, 0.0, 11),
        point(Scheme::Xy, 0.08, 0.0, 12),
        point(Scheme::WestFirst, 0.05, 0.01, 13),
        point(Scheme::seec(), 0.05, 0.0, 14),
    ];
    let dir = tmpdir("resume");
    let ckpt_path = dir.join("mixed.ckpt.jsonl");
    let ckpt = Checkpoint::open(&ckpt_path).unwrap();
    let o1 = run_sweep_with_width(&points, &ckpt, Some(2), &dir, 4);
    assert_eq!((o1.executed, o1.deferred), (2, 2));
    let ckpt = Checkpoint::open(&ckpt_path).unwrap();
    let o2 = run_sweep_with_width(&points, &ckpt, None, &dir, 1);
    assert_eq!((o2.executed, o2.resumed), (2, 2));

    let all_scalar = Checkpoint::open(&dir.join("ref.ckpt.jsonl")).unwrap();
    run_sweep_with_width(&points, &all_scalar, None, &dir, 1);
    let mixed = Checkpoint::open(&ckpt_path).unwrap();
    assert_eq!(sorted_rows(&mixed), sorted_rows(&all_scalar));
    let _ = std::fs::remove_dir_all(&dir);
}
