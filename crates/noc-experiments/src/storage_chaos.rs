//! The storage-fault soak: every fault kind at every write site.
//!
//! PR 8's smoke test proved "SIGKILL once, resume, byte-identical". This
//! module generalizes it to the storage layer: run a reference workload to
//! completion on honest storage, *enumerate every write operation* it
//! performs (a probe run through a fault-free [`FaultVfs`] counts them),
//! then for each (write op × fault kind) combination run the same workload
//! with exactly that fault injected, "restart" it on healthy storage, and
//! assert the recovered row set is **byte-identical** to the reference —
//! with every bad record the fault left behind detected, counted, and
//! quarantined, never parsed as data.
//!
//! The workload is the real persistence stack, not a mock: a quick fault
//! sweep journaling through [`Checkpoint`] (sealed rows, append-recovery,
//! repair-on-open) plus a whole-file summary artifact through
//! [`noc_store::Vfs::write_atomic`] — one representative of each write
//! class. Runs are single-threaded so op indices are deterministic and a
//! divergence repro (`<out>/repro_*.json`) pinpoints the exact
//! `NOC_VFS_FAULT_SCHEDULE` that reproduces it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::jsonio::JsonObj;
use crate::runner::Scheme;
use crate::sweep::{run_sweep_ctx, Checkpoint, FaultPoint};
use noc_store::{FaultKind, FaultPlan, FaultVfs, LineCheck, StdVfs, Vfs};
use noc_types::fault::fnv1a;

/// The sweep points the workload journals. Small enough that the full
/// (site × kind) product stays inside a CI time box, diverse enough that
/// rows differ byte-wise (a swapped pair would be caught).
fn workload_points() -> Vec<FaultPoint> {
    vec![
        FaultPoint::quick("storage-chaos", Scheme::seec(), 0.0),
        FaultPoint::quick("storage-chaos", Scheme::mseec(), 0.0),
        FaultPoint::quick("storage-chaos", Scheme::seec(), 1e-5),
    ]
}

/// One run of the workload through `vfs`: open the journal, execute the
/// missing sweep points (width 1 — deterministic op order), publish the
/// summary artifact. Fault-induced errors are the point, so everything is
/// best-effort; the caller judges the artifacts, not the return codes.
fn run_workload(vfs: &Arc<dyn Vfs>, dir: &Path) {
    let Ok(ckpt) = Checkpoint::open_with_vfs(&dir.join("storage.ckpt.jsonl"), Arc::clone(vfs))
    else {
        return; // open itself faulted: the "crashed before doing anything" case
    };
    let points = workload_points();
    let _ = run_sweep_ctx(&points, &ckpt, None, dir, 1, None);
    // The whole-file artifact: content depends only on the final row set,
    // so an uninterrupted run and a resumed run publish identical bytes.
    let rows = sorted_payloads(vfs, &dir.join("storage.ckpt.jsonl"));
    let summary = JsonObj::new()
        .u64_field("rows", rows.len() as u64)
        .str_field("digest", &format!("{:016x}", digest_of(&rows)))
        .finish();
    let _ = vfs.write_atomic(&dir.join("summary.json"), format!("{summary}\n").as_bytes());
}

/// The journal's good rows as sorted unsealed payload lines — the byte-set
/// the oracle compares. Corrupt lines are *not* silently skipped here;
/// they are returned separately so the oracle can fail on any that survive
/// a repair.
fn journal_lines(vfs: &Arc<dyn Vfs>, path: &Path) -> (Vec<String>, usize) {
    let Ok(text) = vfs.read_to_string(path) else {
        return (Vec::new(), 0);
    };
    let mut payloads = Vec::new();
    let mut bad = 0usize;
    for line in text.lines().filter(|l| !l.is_empty()) {
        match noc_store::open_line(line) {
            LineCheck::Sealed(p) => payloads.push(p.to_string()),
            LineCheck::Legacy(l) if crate::jsonio::parse_flat(l).is_some() => {
                payloads.push(l.to_string());
            }
            LineCheck::Legacy(_) | LineCheck::Corrupt => bad += 1,
        }
    }
    payloads.sort();
    (payloads, bad)
}

fn sorted_payloads(vfs: &Arc<dyn Vfs>, path: &Path) -> Vec<String> {
    journal_lines(vfs, path).0
}

fn digest_of(lines: &[String]) -> u64 {
    fnv1a(lines.join("\n").as_bytes())
}

/// One (write site × fault kind) combination that diverged from the
/// reference, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// 0-based write-op index the fault hit.
    pub site: u64,
    /// Canonical fault schedule that reproduces the run.
    pub schedule: String,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// Summary of one [`run_storage_chaos`] invocation.
#[derive(Clone, Debug, Default)]
pub struct StorageChaosReport {
    /// Write operations the reference workload performs.
    pub sites: u64,
    /// (site × kind) combinations executed.
    pub combos: usize,
    /// Bad lines detected + quarantined across all recoveries (evidence
    /// the detection path actually fired, not that nothing ever tore).
    pub quarantined: usize,
    /// Combinations whose recovered row set diverged from the reference.
    pub divergences: Vec<Divergence>,
}

impl StorageChaosReport {
    /// True when every combination recovered byte-identically.
    pub fn all_match(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The fault kinds swept at every site: the acceptance matrix's
/// {ENOSPC, EIO, torn write, crash-after-partial-write} plus a failed
/// publishing rename. "Crash" is a torn write followed by a stuck disk —
/// nothing after the tear lands, exactly like a dead process.
fn kinds_under_test(site: u64) -> Vec<(String, FaultPlan)> {
    vec![
        (
            "enospc".into(),
            FaultPlan::default().with_event(site, FaultKind::Enospc),
        ),
        (
            "eio".into(),
            FaultPlan::default().with_event(site, FaultKind::Eio),
        ),
        (
            "torn".into(),
            FaultPlan::default().with_event(site, FaultKind::Torn(7)),
        ),
        (
            "rename".into(),
            FaultPlan::default().with_event(site, FaultKind::RenameFail),
        ),
        (
            "crash".into(),
            FaultPlan::default()
                .with_event(site, FaultKind::Torn(7))
                .with_event(site + 1, FaultKind::Stuck),
        ),
    ]
}

/// Runs the full soak under `out_dir` (wiped per combination). `max_sites`
/// caps how many write sites are swept (CI time box; `None` sweeps all).
/// Returns the report; divergence repros are written to
/// `out_dir/repro_site<N>_<kind>.json`.
pub fn run_storage_chaos(
    out_dir: &Path,
    max_sites: Option<u64>,
) -> std::io::Result<StorageChaosReport> {
    std::fs::create_dir_all(out_dir)?;
    let std_vfs: Arc<dyn Vfs> = Arc::new(StdVfs);

    // Reference: the uninterrupted row set every recovery must reproduce.
    let ref_dir = out_dir.join("reference");
    reset_dir(&ref_dir)?;
    run_workload(&std_vfs, &ref_dir);
    let (reference, ref_bad) = journal_lines(&std_vfs, &ref_dir.join("storage.ckpt.jsonl"));
    assert_eq!(ref_bad, 0, "reference run produced bad journal lines");
    assert!(!reference.is_empty(), "reference run journaled nothing");
    let ref_summary = std::fs::read_to_string(ref_dir.join("summary.json"))?;

    // Probe: count the write sites by running fault-free through the
    // fault layer's op counter.
    let probe = FaultVfs::new(FaultPlan::default());
    let probe_dir = out_dir.join("probe");
    reset_dir(&probe_dir)?;
    let probe_vfs: Arc<dyn Vfs> = Arc::new(probe.clone());
    run_workload(&probe_vfs, &probe_dir);
    let sites = probe.ops();
    assert!(sites > 0, "probe run performed no write operations");

    let swept = max_sites.map_or(sites, |cap| sites.min(cap));
    if swept < sites {
        eprintln!("storage-chaos: time box caps sweep at {swept} of {sites} write sites");
    }
    let mut report = StorageChaosReport {
        sites,
        ..StorageChaosReport::default()
    };
    for site in 0..swept {
        for (kind, plan) in kinds_under_test(site) {
            report.combos += 1;
            let case_dir = out_dir.join(format!("site{site}_{kind}"));
            reset_dir(&case_dir)?;
            let schedule = plan.canonical();

            // Faulted attempt: the fault fires mid-workload.
            let faulted: Arc<dyn Vfs> = Arc::new(FaultVfs::new(plan));
            run_workload(&faulted, &case_dir);

            // Restart on healthy storage: open repairs + quarantines, the
            // missing points re-execute, the summary republishes.
            run_workload(&std_vfs, &case_dir);

            // Oracle 1: recovered rows byte-identical to the reference.
            let journal = case_dir.join("storage.ckpt.jsonl");
            let (rows, bad) = journal_lines(&std_vfs, &journal);
            // Oracle 2: zero undetected corruptions — after recovery the
            // journal holds no bad lines (they were compacted away), and
            // whatever was dropped sits in the quarantine file.
            let quarantined = std_vfs
                .read_to_string(&quarantine_file(&journal))
                .map(|t| t.lines().filter(|l| !l.is_empty()).count())
                .unwrap_or(0);
            report.quarantined += quarantined;
            // Oracle 3: the whole-file artifact is the reference bytes —
            // never a torn or stale hybrid.
            let summary = std_vfs
                .read_to_string(&case_dir.join("summary.json"))
                .unwrap_or_default();

            let mut problems = Vec::new();
            if rows != reference {
                problems.push(format!(
                    "row set diverged: {} rows vs {} reference (digest {:016x} vs {:016x})",
                    rows.len(),
                    reference.len(),
                    digest_of(&rows),
                    digest_of(&reference),
                ));
            }
            if bad != 0 {
                problems.push(format!(
                    "{bad} bad line(s) survived recovery in the journal"
                ));
            }
            if summary != ref_summary {
                problems.push("summary.json differs from the reference artifact".to_string());
            }
            if problems.is_empty() {
                let _ = std::fs::remove_dir_all(&case_dir); // keep the tree small
            } else {
                let detail = problems.join("; ");
                let repro = JsonObj::new()
                    .u64_field("site", site)
                    .str_field("kind", &kind)
                    .str_field("schedule", &schedule)
                    .str_field("detail", &detail)
                    .str_field("dir", &case_dir.display().to_string())
                    .finish();
                std_vfs.write_atomic(
                    &out_dir.join(format!("repro_site{site}_{kind}.json")),
                    format!("{repro}\n").as_bytes(),
                )?;
                report.divergences.push(Divergence {
                    site,
                    schedule,
                    detail,
                });
            }
        }
    }

    // Publish the machine-readable report (atomically, of course).
    let rep = JsonObj::new()
        .u64_field("sites", report.sites)
        .u64_field("combos", report.combos as u64)
        .u64_field("quarantined", report.quarantined as u64)
        .u64_field("divergences", report.divergences.len() as u64)
        .str_field("verdict", if report.all_match() { "pass" } else { "fail" })
        .finish();
    std_vfs.write_atomic(
        &out_dir.join("storage_chaos.json"),
        format!("{rep}\n").as_bytes(),
    )?;
    Ok(report)
}

fn quarantine_file(journal: &Path) -> PathBuf {
    let name = journal
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("journal");
    journal.with_file_name(format!("{name}.quarantine"))
}

fn reset_dir(dir: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
}

/// Parses the published report back (the smoke script asserts on it).
pub fn parse_report(text: &str) -> Option<BTreeMap<String, String>> {
    crate::jsonio::parse_flat(text.trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seec_stchaos_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// One full site swept through every kind recovers byte-identically.
    /// (CI sweeps all sites via the `storage_chaos` binary; the in-tree test
    /// keeps tier-1 fast by boxing to the first two sites, which cover
    /// both an append site and the journal-open path.)
    #[test]
    fn first_sites_recover_byte_identically_under_every_fault() {
        let dir = tmpdir("soak");
        let report = run_storage_chaos(&dir, Some(2)).unwrap();
        assert!(
            report.sites >= 4,
            "expected ≥4 write sites, found {}",
            report.sites
        );
        assert_eq!(report.combos, 10);
        assert!(report.all_match(), "divergences: {:?}", report.divergences);
        // The report artifact landed and parses.
        let rep = std::fs::read_to_string(dir.join("storage_chaos.json")).unwrap();
        let rep = parse_report(&rep).unwrap();
        assert_eq!(rep["verdict"], "pass");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
