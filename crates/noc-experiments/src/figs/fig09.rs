//! Fig 9: saturation throughput for bit-rotation and transpose across mesh
//! sizes and VC counts.

use crate::runner::Scheme;
use crate::saturation::find_saturation;
use crate::table::{fmt_throughput, FigTable};
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Xy,
        Scheme::WestFirst,
        Scheme::Spin,
        Scheme::Swap,
        Scheme::Drain,
        Scheme::seec(),
        Scheme::mseec(),
    ]
}

/// One pattern's table: rows = scheme, columns = (mesh, VCs) combinations.
pub fn panel(pattern: TrafficPattern, quick: bool) -> FigTable {
    let (sizes, vcs_list, cycles): (&[u8], &[u8], u64) = if quick {
        (&[4], &[2], 6_000)
    } else {
        (&[4, 8], &[1, 2, 4], 20_000)
    };
    let mut cols = vec!["scheme".to_string()];
    for &k in sizes {
        for &v in vcs_list {
            cols.push(format!("{k}x{k}/{v}vc"));
        }
    }
    let colrefs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = FigTable::new(
        format!("Fig 9 — saturation throughput, {}", pattern.label()),
        &colrefs,
    )
    .with_note("paper: mSEEC > SEEC > SWAP/DRAIN > SPIN > WF/XY; decreases with size");
    let rows: Vec<Vec<String>> = schemes()
        .par_iter()
        .map(|&s| {
            let mut row = vec![s.label()];
            for &k in sizes {
                for &v in vcs_list {
                    row.push(fmt_throughput(find_saturation(k, v, s, pattern, cycles)));
                }
            }
            row
        })
        .collect();
    for r in rows {
        t.push_row(r);
    }
    t
}

pub fn run(quick: bool) -> Vec<FigTable> {
    [TrafficPattern::BitRotation, TrafficPattern::Transpose]
        .into_iter()
        .map(|p| panel(p, quick))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_panel_produces_positive_saturation() {
        let t = panel(TrafficPattern::Transpose, true);
        assert_eq!(t.rows.len(), schemes().len());
        for row in &t.rows {
            let v: f64 = row[1].parse().unwrap();
            assert!(v > 0.0, "{}: zero saturation", row[0]);
        }
    }
}
