//! Recovery sweep: cost and benefit of the runtime drain-and-reinject
//! channel across the paper's schemes.
//!
//! Two series, both through the crash-resilient checkpointed runner:
//!
//! * **armed-idle** — the headline VC-router schemes on a healthy mesh with
//!   the recovery channel armed (drain + end-to-end retransmission). On a
//!   healthy mesh nothing ever wedges, so every row must report zero drain
//!   recoveries and zero retransmits: arming is free until it is needed.
//! * **forced-wedge** — the statically deadlockable ADAPT baseline (fully
//!   adaptive minimal, no escape mechanism) at one VC and high load. Unarmed
//!   it is refused by the certification gate (an `"uncertified"` status
//!   row); armed, the drain channel converts each wedge into forward
//!   progress and the point completes as `"recovered"`. SEEC on the same
//!   deadlockable routing relation rides along as the paper's answer to the
//!   same problem — its stochastic escape keeps the network out of the
//!   recovery path entirely.

use crate::runner::Scheme;
use crate::sweep::{run_sweep, Checkpoint, FaultPoint, SweepOutcome};
use crate::table::FigTable;
use noc_traffic::TrafficPattern;
use noc_types::{FaultConfig, RecoveryConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Schemes for the armed-idle overhead comparison.
pub fn armed_schemes() -> Vec<Scheme> {
    vec![
        Scheme::seec(),
        Scheme::mseec(),
        Scheme::escape(),
        Scheme::Spin,
        Scheme::Tfc,
    ]
}

/// An end-to-end timeout far beyond any healthy-mesh latency: the NIC
/// tracks every packet but never retransmits unless one is truly lost.
fn idle_recovery() -> RecoveryConfig {
    RecoveryConfig::drain().with_e2e(100_000, 4)
}

/// A tight drain threshold for the forced-wedge series: rescue long before
/// the runner's watchdog (2 000 stalled cycles) would escalate to a panic.
fn wedge_recovery() -> RecoveryConfig {
    RecoveryConfig::drain().with_stuck_threshold(128)
}

/// The sweep's datapoints. `quick` shrinks the healthy mesh and the cycle
/// budgets for CI smoke runs; the forced-wedge mesh stays 4x4 either way —
/// wedging it is the point, not scaling it.
pub fn points(quick: bool) -> Vec<FaultPoint> {
    let (k, cycles) = if quick { (4, 6_000) } else { (8, 30_000) };
    let mut out = Vec::new();
    for scheme in armed_schemes() {
        out.push(FaultPoint {
            series: "armed-idle",
            scheme,
            k,
            vcs: 4,
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            cycles,
            seed: 0xA11CE,
            fault: FaultConfig::default(),
            recovery: idle_recovery(),
        });
    }
    let wedge = |scheme: Scheme, recovery: RecoveryConfig| FaultPoint {
        series: "forced-wedge",
        scheme,
        k: 4,
        vcs: 1,
        pattern: TrafficPattern::UniformRandom,
        rate: 0.30,
        cycles: if quick { 6_000 } else { 20_000 },
        seed: 0xA11CE,
        fault: FaultConfig::default(),
        recovery,
    };
    out.push(wedge(Scheme::Adaptive, RecoveryConfig::default()));
    out.push(wedge(Scheme::Adaptive, wedge_recovery()));
    out.push(wedge(Scheme::seec(), wedge_recovery()));
    out
}

fn cell(row: Option<&BTreeMap<String, String>>, field: &str) -> String {
    row.and_then(|r| r.get(field))
        .cloned()
        .unwrap_or_else(|| "-".into())
}

/// Builds the two result tables from checkpoint rows, in the deterministic
/// order of [`points`].
pub fn tables(
    pts: &[FaultPoint],
    rows: &BTreeMap<String, BTreeMap<String, String>>,
) -> Vec<FigTable> {
    let mut armed = FigTable::new(
        "Recovery sweep — armed recovery channel on a healthy mesh (uniform random, 0.05 inj)",
        &[
            "scheme", "status", "avg_lat", "p50", "p95", "p99", "drains", "e2e_retx",
        ],
    )
    .with_note("an armed channel that never fires must cost nothing");
    let mut wedge = FigTable::new(
        "Recovery sweep — forced wedge (ADAPT 1 VC, 0.30 inj) vs drain recovery",
        &[
            "scheme",
            "recovery",
            "status",
            "avg_lat",
            "p99",
            "drains",
            "cycles_lost",
            "reason",
        ],
    )
    .with_note(
        "unarmed ADAPT is refused by the gate; armed, every wedge drains and the run completes",
    );
    for p in pts {
        let row = rows.get(&p.key());
        match p.series {
            "armed-idle" => armed.push_row(vec![
                p.scheme.label(),
                cell(row, "status"),
                cell(row, "avg_latency"),
                cell(row, "p50_latency"),
                cell(row, "p95_latency"),
                cell(row, "p99_latency"),
                cell(row, "drain_recoveries"),
                cell(row, "e2e_retransmits"),
            ]),
            "forced-wedge" => {
                let mut reason = cell(row, "reason");
                if reason.len() > 48 {
                    reason.truncate(48);
                    reason.push('…');
                }
                wedge.push_row(vec![
                    p.scheme.label(),
                    p.recovery.canonical(),
                    cell(row, "status"),
                    cell(row, "avg_latency"),
                    cell(row, "p99_latency"),
                    cell(row, "drain_recoveries"),
                    cell(row, "recovery_cycles_lost"),
                    reason,
                ]);
            }
            other => panic!("unknown recovery-sweep series '{other}'"),
        }
    }
    vec![armed, wedge]
}

/// Runs (or resumes) the sweep against `ckpt` and renders the tables from
/// everything the checkpoint now holds.
pub fn run(
    quick: bool,
    ckpt: &Checkpoint,
    max_points: Option<usize>,
) -> (Vec<FigTable>, SweepOutcome) {
    let pts = points(quick);
    let dump_dir = ckpt
        .path()
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("results"), Path::to_path_buf);
    let outcome = run_sweep(&pts, ckpt, max_points, &dump_dir);
    let by_key: BTreeMap<String, BTreeMap<String, String>> = ckpt
        .rows()
        .into_iter()
        .filter_map(|r| r.get("key").cloned().map(|k| (k, r)))
        .collect();
    (tables(&pts, &by_key), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_well_formed() {
        for quick in [true, false] {
            let pts = points(quick);
            assert_eq!(pts.len(), armed_schemes().len() + 3);
            let mut keys: Vec<String> = pts.iter().map(FaultPoint::key).collect();
            let n = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), n, "checkpoint keys must be unique per point");
        }
        let tables = tables(&points(true), &BTreeMap::new());
        assert_eq!(tables.len(), 2);
        assert_eq!(
            tables[0].rows.len() + tables[1].rows.len(),
            points(true).len()
        );
    }

    #[test]
    fn forced_wedge_recovers_when_armed_and_is_refused_unarmed() {
        let dir = std::env::temp_dir().join(format!("seec_recsweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = Checkpoint::open(&dir.join("w.ckpt.jsonl")).unwrap();
        let wedge: Vec<FaultPoint> = points(true)
            .into_iter()
            .filter(|p| p.series == "forced-wedge")
            .collect();
        let o = run_sweep(&wedge, &ckpt, None, &dir);
        assert_eq!(o.failed, 0, "no forced-wedge point may panic");
        let by_key: BTreeMap<String, BTreeMap<String, String>> = ckpt
            .rows()
            .into_iter()
            .filter_map(|r| r.get("key").cloned().map(|k| (k, r)))
            .collect();
        let status = |p: &FaultPoint| by_key[&p.key()]["status"].clone();
        assert_eq!(status(&wedge[0]), "uncertified", "unarmed ADAPT must skip");
        assert_eq!(status(&wedge[1]), "recovered", "armed ADAPT must recover");
        let drains: u64 = by_key[&wedge[1].key()]["drain_recoveries"].parse().unwrap();
        assert!(drains > 0);
        // SEEC's own escape keeps it clear of the drain channel.
        assert_eq!(status(&wedge[2]), "ok");
        assert_eq!(by_key[&wedge[2].key()]["drain_recoveries"], "0");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
