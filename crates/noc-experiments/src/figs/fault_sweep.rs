//! Fault sweep: latency, throughput and retransmission overhead for
//! SEEC/mSEEC vs escape-VC/SPIN/TFC under rising transient fault rates,
//! plus 1–3 random dead links for the schemes that can route around them.
//!
//! Unlike the healthy-mesh figures this sweep runs through the
//! crash-resilient runner in [`crate::sweep`]: every datapoint lands in a
//! checkpoint as it completes, panicking points become `"failed"` rows with
//! a black-box dump, statically impossible scenarios (unroutable dead sets,
//! severed escape layers under Duato schemes) become status rows, and a
//! restarted sweep re-executes only what is missing. All fault randomness
//! derives from [`noc_types::FaultConfig::fault_seed`], so the curves are
//! reproducible run-to-run.

use crate::runner::Scheme;
use crate::sweep::{run_sweep, Checkpoint, FaultPoint, SweepOutcome};
use crate::table::FigTable;
use noc_traffic::TrafficPattern;
use noc_types::{FaultConfig, RecoveryConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Line-up for the transient-fault curves: SEEC/mSEEC against one
/// proactive (TFC), one reactive (SPIN) and the Duato (escape-VC) baseline.
pub fn transient_schemes() -> Vec<Scheme> {
    vec![
        Scheme::seec(),
        Scheme::mseec(),
        Scheme::escape(),
        Scheme::Spin,
        Scheme::Tfc,
    ]
}

/// Line-up for the dead-link curves. TFC and plain turn-model routing
/// cannot detour (the degraded certifier rejects them), so the comparison
/// is SEEC/mSEEC vs escape-VC — where the certifier shows the escape layer
/// severed, which the table reports as a status row.
pub fn dead_link_schemes() -> Vec<Scheme> {
    vec![Scheme::seec(), Scheme::mseec(), Scheme::escape()]
}

/// The sweep's datapoints. `quick` shrinks mesh, cycle budget and the rate
/// grid for CI smoke runs.
pub fn points(quick: bool) -> Vec<FaultPoint> {
    let (k, cycles) = if quick { (4, 6_000) } else { (8, 30_000) };
    let transient_rates: &[f64] = if quick {
        &[0.0, 0.01, 0.05]
    } else {
        &[0.0, 0.001, 0.005, 0.01, 0.05, 0.1]
    };
    let base = |scheme: Scheme, series: &'static str, fault: FaultConfig| FaultPoint {
        series,
        scheme,
        k,
        vcs: 4,
        pattern: TrafficPattern::UniformRandom,
        rate: 0.05,
        cycles,
        seed: 0xA11CE,
        fault,
        recovery: RecoveryConfig::default(),
    };
    let mut out = Vec::new();
    for scheme in transient_schemes() {
        for &tr in transient_rates {
            out.push(base(scheme, "transient", FaultConfig::transient(tr)));
        }
    }
    for scheme in dead_link_schemes() {
        for n in 1..=3u8 {
            out.push(base(
                scheme,
                "dead-links",
                FaultConfig::default().with_random_dead_links(n),
            ));
        }
    }
    out
}

fn cell(row: Option<&BTreeMap<String, String>>, field: &str) -> String {
    row.and_then(|r| r.get(field))
        .cloned()
        .unwrap_or_else(|| "-".into())
}

/// Builds the two result tables from checkpoint rows, in the deterministic
/// order of [`points`]. Points missing from the checkpoint (e.g. deferred
/// by `--max-points`) render as `-` cells.
pub fn tables(
    pts: &[FaultPoint],
    rows: &BTreeMap<String, BTreeMap<String, String>>,
) -> Vec<FigTable> {
    let mut transient = FigTable::new(
        "Fault sweep — transient fault rate vs latency/throughput (uniform random, 0.05 inj)",
        &[
            "scheme",
            "transient",
            "status",
            "avg_lat",
            "thpt",
            "retx_overhead",
            "corrupted",
            "retransmitted",
        ],
    )
    .with_note("link-layer go-back-N heals every corruption: latency cost, never loss");
    let mut dead = FigTable::new(
        "Fault sweep — random dead links vs latency/throughput (uniform random, 0.05 inj)",
        &[
            "scheme",
            "dead",
            "status",
            "avg_lat",
            "thpt",
            "recovery_events",
            "reason",
        ],
    )
    .with_note(
        "degraded-mesh certification gates each point; Duato schemes lose their \
         escape layer and are reported, not run",
    );
    for p in pts {
        let row = rows.get(&p.key());
        match p.series {
            "transient" => transient.push_row(vec![
                p.scheme.label(),
                format!("{:.3}", p.fault.transient_rate),
                cell(row, "status"),
                cell(row, "avg_latency"),
                cell(row, "throughput"),
                cell(row, "retx_overhead"),
                cell(row, "corrupted_flits"),
                cell(row, "retransmitted_flits"),
            ]),
            "dead-links" => {
                let mut reason = cell(row, "reason");
                if reason.len() > 48 {
                    reason.truncate(48);
                    reason.push('…');
                }
                dead.push_row(vec![
                    p.scheme.label(),
                    p.fault.random_dead_links.to_string(),
                    cell(row, "status"),
                    cell(row, "avg_latency"),
                    cell(row, "throughput"),
                    cell(row, "recovery_events"),
                    reason,
                ]);
            }
            other => panic!("unknown sweep series '{other}'"),
        }
    }
    vec![transient, dead]
}

/// Runs (or resumes) the sweep against `ckpt` and renders the tables from
/// everything the checkpoint now holds.
pub fn run(
    quick: bool,
    ckpt: &Checkpoint,
    max_points: Option<usize>,
) -> (Vec<FigTable>, SweepOutcome) {
    let pts = points(quick);
    let dump_dir = ckpt
        .path()
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("results"), Path::to_path_buf);
    let outcome = run_sweep(&pts, ckpt, max_points, &dump_dir);
    let by_key: BTreeMap<String, BTreeMap<String, String>> = ckpt
        .rows()
        .into_iter()
        .filter_map(|r| r.get("key").cloned().map(|k| (k, r)))
        .collect();
    (tables(&pts, &by_key), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_both_series_and_unique_keys() {
        let pts = points(true);
        assert_eq!(
            pts.len(),
            transient_schemes().len() * 3 + dead_link_schemes().len() * 3
        );
        let mut keys: Vec<String> = pts.iter().map(FaultPoint::key).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "checkpoint keys must be unique per point");
        assert!(pts.iter().any(|p| p.series == "transient"));
        assert!(pts.iter().any(|p| p.series == "dead-links"));
    }

    #[test]
    fn tables_render_missing_points_as_dashes() {
        let pts = points(true);
        let tables = tables(&pts, &BTreeMap::new());
        assert_eq!(tables.len(), 2);
        assert_eq!(
            tables[0].rows.len() + tables[1].rows.len(),
            pts.len(),
            "every point gets a row"
        );
        assert!(tables[0].rows.iter().all(|r| r[2] == "-"));
    }

    #[test]
    fn full_and_quick_grids_differ() {
        assert!(points(false).len() > points(true).len());
    }
}
