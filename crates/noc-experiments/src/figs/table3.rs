//! Table 3: SEEC vs mSEEC analytics — seek time and deadlock-resolution
//! time scaling, verified by measurement.
//!
//! The paper's bounds on a k×k mesh with m message classes:
//! SEEC seeks in 1..O(m·k²) and resolves deadlocks in O(m·k⁴) worst case;
//! mSEEC seeks in 1..O(m·k) and resolves in O(m·k³). We measure average
//! seek duration (side-band hops per seek) and the time from a deadlock's
//! formation to its resolution under a saturating load, across mesh sizes.

use crate::runner::{run_synth, Scheme, SynthSpec};
use crate::table::{fmt_latency, FigTable};
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

/// Measured seek cost per FF delivery for both schemes across mesh sizes.
pub fn run(quick: bool) -> FigTable {
    let sizes: &[u8] = if quick { &[4] } else { &[4, 8, 16] };
    let cycles = if quick { 8_000 } else { 30_000 };
    let mut t = FigTable::new(
        "Table 3 — measured seeker cost and FF service time, saturating uniform random",
        &[
            "mesh",
            "scheme",
            "sideband_hops/FF",
            "avg_ff_service",
            "ff_packets",
        ],
    )
    .with_note("paper bounds: SEEC seek O(m*k^2) vs mSEEC O(m*k); both fly minimal FF paths");
    let rows: Vec<Vec<String>> = sizes
        .par_iter()
        .flat_map(|&k| {
            [Scheme::seec(), Scheme::mseec()]
                .into_par_iter()
                .map(move |scheme| (k, scheme))
        })
        .map(|(k, scheme)| {
            let s = run_synth(
                SynthSpec::new(k, 2, scheme, TrafficPattern::UniformRandom, 0.30)
                    .with_cycles(cycles),
            );
            let per_ff = if s.ff_packets > 0 {
                s.sideband_hops as f64 / s.ff_packets as f64
            } else {
                f64::NAN
            };
            let service = if s.ff_packets > 0 {
                s.sum_ff_bufferless as f64 / s.ff_packets as f64
            } else {
                f64::NAN
            };
            vec![
                format!("{k}x{k}"),
                scheme.label(),
                fmt_latency(per_ff),
                fmt_latency(service),
                s.ff_packets.to_string(),
            ]
        })
        .collect();
    for r in rows {
        t.push_row(r);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_schemes_measure_ff_activity() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let n: u64 = row[4].parse().unwrap();
            assert!(n > 0, "{}: no FF packets at saturating load", row[1]);
        }
    }
}
