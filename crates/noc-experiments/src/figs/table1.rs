//! Table 1, measured: the paper's qualitative comparison of deadlock-freedom
//! mechanisms, with every measurable property verified by simulation.
//!
//! * **no misroute** — `misroute_hops == 0` under stress.
//! * **no detection** — reactive schemes (SPIN) fire `recovery_events` with
//!   probes; proactive/subactive ones fire none or detection-free events.
//! * **deadlock-free** — the stress run keeps moving (watchdog).
//! * **extra buffers** — from the area model (scheme extras + VC minimum).

use crate::runner::{Scheme, SynthSpec};
use crate::table::FigTable;
use noc_power::area::min_vcs_for_correctness;
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

/// Stress-runs one scheme and reports (`deadlock_free`, misroutes, detections).
fn probe(scheme: Scheme, quick: bool) -> (bool, u64, u64) {
    let cycles = if quick { 8_000 } else { 30_000 };
    // Deadlock-prone minimum-buffer configuration: 1 VC (2 for escape VC,
    // which needs a separate escape lane) at a saturating load, so recovery
    // behaviour is actually exercised.
    let vcs = if matches!(scheme, Scheme::EscapeVc { .. }) {
        2
    } else {
        1
    };
    let spec =
        SynthSpec::new(4, vcs, scheme, TrafficPattern::UniformRandom, 0.30).with_cycles(cycles);
    let s = crate::runner::run_synth(spec);
    // Deadlock-free in this harness = kept delivering through saturation.
    // (DRAIN's single-shift drains are slow by design; the bar scales with
    // the run length.)
    let live = s.ejected_packets_all > if quick { 40 } else { 200 };
    (live, s.misroute_hops, s.recovery_events)
}

pub fn run(quick: bool) -> FigTable {
    let mut t = FigTable::new(
        "Table 1 (measured) — qualitative properties verified by simulation",
        &[
            "scheme",
            "class",
            "min VCs",
            "deadlock-free",
            "misroute_hops",
            "detection_events",
        ],
    )
    .with_note("paper's claims: SEEC = subactive, no detection, no misroute, no extra buffers");
    let rows: Vec<Vec<String>> = [
        (Scheme::Xy, "proactive"),
        (Scheme::WestFirst, "proactive"),
        (Scheme::escape(), "proactive"),
        (Scheme::MinBd, "proactive"),
        (Scheme::Spin, "reactive"),
        (Scheme::Swap, "subactive"),
        (Scheme::Drain, "subactive"),
        (Scheme::seec(), "subactive"),
        (Scheme::mseec(), "subactive"),
    ]
    .par_iter()
    .map(|&(scheme, class)| {
        let (live, misroutes, detections) = probe(scheme, quick);
        vec![
            scheme.label(),
            class.to_string(),
            min_vcs_for_correctness(scheme.kind()).to_string(),
            if live { "yes" } else { "NO" }.to_string(),
            misroutes.to_string(),
            detections.to_string(),
        ]
    })
    .collect();
    for r in rows {
        t.push_row(r);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seec_has_no_misroutes_and_no_detection() {
        let t = run(true);
        let seec = t.rows.iter().find(|r| r[0] == "SEEC").unwrap();
        assert_eq!(seec[3], "yes", "SEEC must stay live");
        assert_eq!(seec[4], "0", "SEEC must never misroute");
        assert_eq!(seec[5], "0", "SEEC needs no deadlock detection");
    }

    #[test]
    fn subactive_baselines_do_misroute() {
        let t = run(true);
        for name in ["SWAP", "DRAIN", "minBD"] {
            let row = t.rows.iter().find(|r| r[0] == name).unwrap();
            let m: u64 = row[4].parse().unwrap();
            assert!(m > 0, "{name} should misroute under stress");
        }
    }

    #[test]
    fn spin_detects_deadlocks() {
        let t = run(true);
        let spin = t.rows.iter().find(|r| r[0] == "SPIN").unwrap();
        let d: u64 = spin[5].parse().unwrap();
        assert!(d > 0, "SPIN must fire detection events under stress");
    }
}
