//! Fig 8: latency versus injection rate across traffic patterns and mesh
//! sizes, all schemes.

use crate::runner::Scheme;
use crate::saturation::{curve_point, CurvePoint};
use crate::table::{fmt_latency, FigTable};
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

/// The figure's line-up: proactive, reactive, subactive, deflection, SEEC.
pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Xy,
        Scheme::WestFirst,
        Scheme::Tfc,
        Scheme::escape(),
        Scheme::MinBd,
        Scheme::Spin,
        Scheme::Swap,
        Scheme::Drain,
        Scheme::seec(),
        Scheme::mseec(),
    ]
}

/// One latency-vs-injection panel (a single pattern × mesh size, 4 VCs as in
/// §4.3). `quick` shrinks rates/cycles for smoke tests and benches.
pub fn panel(pattern: TrafficPattern, k: u8, quick: bool) -> FigTable {
    let vcs = 4;
    // Larger meshes sweep fewer points for tractable single-core runtimes;
    // the knee sits well inside the range either way.
    let (rates, cycles): (Vec<f64>, u64) = if quick {
        ((1..=4).map(|i| i as f64 * 0.03).collect(), 6_000)
    } else if k >= 16 {
        ((1..=6).map(|i| i as f64 * 0.03).collect(), 12_000)
    } else {
        ((1..=8).map(|i| i as f64 * 0.03).collect(), 20_000)
    };
    let mut cols = vec!["inj_rate".to_string()];
    let list = schemes();
    cols.extend(list.iter().map(|s| s.label()));
    let colrefs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = FigTable::new(
        format!(
            "Fig 8 — avg packet latency vs injection rate, {} on {k}x{k} (4 VCs)",
            pattern.label()
        ),
        &colrefs,
    )
    .with_note("paper: SEEC ≥ all baselines; mSEEC best; minBD saturates first");
    // One flat scheme × rate sweep: a single parallel region with
    // |schemes|·|rates| independent design points load-balances far better
    // than per-scheme sweeps (the quick panel alone yields 40 tasks).
    let pairs: Vec<(Scheme, f64)> = list
        .iter()
        .flat_map(|&s| rates.iter().map(move |&r| (s, r)))
        .collect();
    let points: Vec<CurvePoint> = pairs
        .into_par_iter()
        .map(|(s, rate)| curve_point(k, vcs, s, pattern, rate, cycles))
        .collect();
    let curves: Vec<&[CurvePoint]> = points.chunks(rates.len()).collect();
    for (i, &rate) in rates.iter().enumerate() {
        let mut row = vec![format!("{rate:.3}")];
        for curve in &curves {
            row.push(fmt_latency(curve[i].avg_latency));
        }
        t.push_row(row);
    }
    t
}

/// The full figure: the paper's four patterns × {4×4, 8×8, 16×16}.
pub fn run(quick: bool) -> Vec<FigTable> {
    let sizes: &[u8] = if quick { &[4] } else { &[4, 8, 16] };
    let mut out = Vec::new();
    for &k in sizes {
        for pattern in TrafficPattern::PAPER {
            out.push(panel(pattern, k, quick));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_panel_has_all_schemes_and_rates() {
        let t = panel(TrafficPattern::UniformRandom, 4, true);
        assert_eq!(t.columns.len(), 1 + schemes().len());
        assert_eq!(t.rows.len(), 4);
        // All latencies parse and are positive at the lowest rate.
        for cell in &t.rows[0][1..] {
            let v: f64 = cell.parse().unwrap();
            assert!(v > 0.0, "zero latency cell");
        }
    }
}
