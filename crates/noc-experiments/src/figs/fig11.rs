//! Fig 11: average and peak network link energy across deadlock-freedom
//! schemes (uniform random, 1 VC), normalized to West-first.

use crate::runner::{run_synth, Scheme, SynthSpec};
use crate::table::{fmt_ratio, FigTable};
use noc_power::energy::link_energy;
use noc_traffic::TrafficPattern;
use noc_types::NetConfig;
use rayon::prelude::*;

pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::WestFirst,
        Scheme::Spin,
        Scheme::MinBd,
        Scheme::Chipper,
        Scheme::Swap,
        Scheme::Drain,
        Scheme::seec(),
    ]
}

/// Regenerates Fig 11 as energy *per delivered flit* — the denominator that
/// makes schemes with different accepted throughput comparable. "Average"
/// is a moderate load every scheme sustains; "peak" is a post-saturation
/// load, the regime where SPIN's probes and deflection misroutes explode.
pub fn run(quick: bool) -> FigTable {
    let (k, cycles) = if quick { (4u8, 6_000u64) } else { (8, 30_000) };
    let avg_rate = 0.04;
    let peak_rate = 0.30;
    let cfg = NetConfig::synth(k, 1);
    let per_flit = |stats: &noc_sim::Stats| -> (f64, f64) {
        let e = link_energy(stats, &cfg);
        let flits = stats.ejected_flits_all.max(1) as f64;
        (
            (e.link_total + e.sideband_total) / flits,
            e.link_total / flits,
        )
    };
    let results: Vec<(String, f64, f64)> = schemes()
        .par_iter()
        .map(|&s| {
            let a = run_synth(
                SynthSpec::new(k, 1, s, TrafficPattern::UniformRandom, avg_rate)
                    .with_cycles(cycles),
            );
            let p = run_synth(
                SynthSpec::new(k, 1, s, TrafficPattern::UniformRandom, peak_rate)
                    .with_cycles(cycles),
            );
            (s.label(), per_flit(&a).0, per_flit(&p).0)
        })
        .collect();
    let wf_avg = results[0].1.max(1e-9);
    let wf_peak = results[0].2.max(1e-9);
    let mut t = FigTable::new(
        format!("Fig 11 — link energy per delivered flit, normalized to West-first (uniform random, {k}x{k}, 1 VC)"),
        &["scheme", "avg", "peak"],
    )
    .with_note("paper: SPIN 3.7x avg / up to 9.7x peak; deflection +25-74%; SWAP/DRAIN +5-14%; SEEC <1% over WF");
    for (label, avg, peak) in results {
        t.push_row(vec![
            label,
            fmt_ratio(avg / wf_avg),
            fmt_ratio(peak / wf_peak),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn west_first_normalizes_to_one() {
        let t = run(true);
        assert_eq!(t.rows[0][0], "WF");
        let v: f64 = t.rows[0][1].parse().unwrap();
        assert!((v - 1.0).abs() < 1e-9);
    }
}
