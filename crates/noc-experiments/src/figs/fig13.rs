//! Fig 13: SEEC/mSEEC with 2 VCs versus escape VC with growing VC counts —
//! FF paths emulate extra VCs without paying for them.

use crate::runner::Scheme;
use crate::saturation::{latency_curve, saturation_from_curve};
use crate::table::{fmt_throughput, FigTable};
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

/// Rows: escape VC at 2/4/8/12 VCs, SEEC and mSEEC at 2 VCs. Columns:
/// saturation throughput per pattern.
pub fn run(quick: bool) -> FigTable {
    let (k, cycles) = if quick { (4u8, 6_000u64) } else { (8, 20_000) };
    let patterns = [TrafficPattern::UniformRandom, TrafficPattern::Transpose];
    let esc_vcs: &[u8] = if quick { &[2, 4] } else { &[2, 4, 8, 12] };
    let mut variants: Vec<(String, Scheme, u8)> = esc_vcs
        .iter()
        .map(|&v| (format!("eVC-{v}vc"), Scheme::escape(), v))
        .collect();
    variants.push(("SEEC-2vc".into(), Scheme::seec(), 2));
    variants.push(("mSEEC-2vc".into(), Scheme::mseec(), 2));

    let mut cols = vec!["variant".to_string()];
    cols.extend(patterns.iter().map(|p| p.label().to_string()));
    let colrefs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = FigTable::new(
        format!("Fig 13 — saturation throughput: SEEC/mSEEC (2 VCs) vs escape VC with more VCs ({k}x{k})"),
        &colrefs,
    )
    .with_note("paper: escape VC needs 8+ VCs to match/beat SEEC & mSEEC at 2");
    let rates: Vec<f64> = (1..=12).map(|i| i as f64 * 0.025).collect();
    let rows: Vec<Vec<String>> = variants
        .par_iter()
        .map(|(label, scheme, vcs)| {
            let mut row = vec![label.clone()];
            for &p in &patterns {
                let curve = latency_curve(k, *vcs, *scheme, p, &rates, cycles);
                row.push(fmt_throughput(saturation_from_curve(&curve, 3.0)));
            }
            row
        })
        .collect();
    for r in rows {
        t.push_row(r);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_vc_improves_with_more_vcs() {
        let t = run(true);
        let evc2: f64 = t.rows[0][1].parse().unwrap();
        let evc4: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            evc4 >= 0.9 * evc2,
            "more VCs should not hurt escape VC: {evc2} → {evc4}"
        );
    }
}
