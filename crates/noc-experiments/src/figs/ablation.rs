//! §4.4.1 ablation: subactive deadlock resolution is slow — does it cost
//! anything *before* saturation?
//!
//! The paper argues no: cycles only form after the network has already
//! saturated, so SEEC's (slow) one-at-a-time drains never sit on the
//! critical path at operating loads. We verify by comparing SEEC's
//! pre-saturation latency against the inherently deadlock-free XY baseline
//! and counting how many packets actually needed rescue.

use crate::runner::{run_synth, Scheme, SynthSpec};
use crate::table::{fmt_latency, fmt_ratio, FigTable};
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

pub fn run(quick: bool) -> FigTable {
    let (k, cycles) = if quick { (4u8, 6_000u64) } else { (8, 30_000) };
    let rates: Vec<f64> = if quick {
        vec![0.02, 0.06]
    } else {
        vec![0.02, 0.05, 0.08, 0.12, 0.16, 0.20]
    };
    let mut t = FigTable::new(
        format!("Ablation (§4.4.1) — SEEC vs XY below saturation (uniform random, {k}x{k}, 2 VCs)"),
        &["inj_rate", "xy_latency", "seec_latency", "seec_ff_share"],
    )
    .with_note("paper: no visible slowdown from subactive resolution before saturation");
    let rows: Vec<Vec<String>> = rates
        .par_iter()
        .map(|&rate| {
            let xy = run_synth(
                SynthSpec::new(k, 2, Scheme::Xy, TrafficPattern::UniformRandom, rate)
                    .with_cycles(cycles),
            );
            let se = run_synth(
                SynthSpec::new(k, 2, Scheme::seec(), TrafficPattern::UniformRandom, rate)
                    .with_cycles(cycles),
            );
            vec![
                format!("{rate:.3}"),
                fmt_latency(xy.avg_total_latency()),
                fmt_latency(se.avg_total_latency()),
                fmt_ratio(se.ff_fraction()),
            ]
        })
        .collect();
    for r in rows {
        t.push_row(r);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_latencies_are_comparable() {
        let t = run(true);
        let xy: f64 = t.rows[0][1].parse().unwrap();
        let se: f64 = t.rows[0][2].parse().unwrap();
        assert!(
            se < 2.0 * xy,
            "SEEC at 2% load should not be far from XY: {se} vs {xy}"
        );
    }
}
