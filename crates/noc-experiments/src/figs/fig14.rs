//! Fig 14: application average packet latency and runtime, normalized to XY.
//!
//! Two SEEC configurations as in §4.5: *iso-VC-VNet* (every scheme gets 2
//! VCs per `VNet` — the baselines need 6 `VNets`, SEEC runs one) and
//! *iso-hardware* (SEEC gets the same total VC budget: 12 VCs in 1 `VNet`).

use crate::runner::{run_app, AppSpec, Scheme};
use crate::table::{fmt_latency, fmt_ratio, FigTable};
use noc_traffic::apps::{AppProfile, APPS};
use rayon::prelude::*;

/// (label, scheme, vnets, vcs-per-vnet).
pub fn variants() -> Vec<(String, Scheme, u8, u8)> {
    vec![
        ("XY".into(), Scheme::Xy, 6, 2),
        ("WF".into(), Scheme::WestFirst, 6, 2),
        ("TFC".into(), Scheme::Tfc, 6, 2),
        ("EscVC".into(), Scheme::escape(), 6, 2),
        ("SPIN".into(), Scheme::Spin, 6, 2),
        ("SWAP".into(), Scheme::Swap, 6, 2),
        ("DRAIN".into(), Scheme::Drain, 1, 2),
        ("SEEC".into(), Scheme::seec(), 1, 2),
        ("mSEEC".into(), Scheme::mseec(), 1, 2),
        ("SEEC-isoHW".into(), Scheme::seec(), 1, 12),
        ("mSEEC-isoHW".into(), Scheme::mseec(), 1, 12),
    ]
}

fn apps_subset(quick: bool) -> Vec<&'static AppProfile> {
    if quick {
        APPS.iter().take(2).collect()
    } else {
        APPS.iter().collect()
    }
}

/// Returns (latency table, runtime table): rows = app, cols = variants.
pub fn run(quick: bool) -> Vec<FigTable> {
    // Bounded so that wedged baselines cannot burn minutes per point: 60
    // transactions per core complete in ~40k cycles on a live network.
    let txns = if quick { 30 } else { 60 };
    let max_cycles = if quick { 150_000 } else { 400_000 };
    let vars = variants();
    let apps = apps_subset(quick);

    let mut cols = vec!["app".to_string()];
    cols.extend(vars.iter().map(|v| v.0.clone()));
    let colrefs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut lat_t = FigTable::new(
        "Fig 14a — application average packet latency (cycles), 4x4 mesh",
        &colrefs,
    )
    .with_note(
        "paper: SEEC iso-VC-VNet ≈ SPIN at 1/6th buffers; mSEEC iso-HW ~40% better than all",
    );
    let mut run_t = FigTable::new(
        "Fig 14b — application runtime normalized to XY, 4x4 mesh",
        &colrefs,
    )
    .with_note("paper: SEEC/mSEEC ~5% average runtime improvement");

    for app in apps {
        // The statistical profiles are calibrated for 16-core full-system
        // rates, which leave a 4x4 NoC far below its knee (every scheme then
        // measures identically). The paper's runs stress the network; we
        // match that by scaling request intensity 2.5x.
        let mut hot = *app;
        hot.think_time = (hot.think_time / 2.5).max(8.0);
        let results: Vec<(f64, u64)> = vars
            .par_iter()
            .enumerate()
            .map(|(i, (_, scheme, vnets, vcs))| {
                let r = run_app(AppSpec {
                    k: 4,
                    vnets: *vnets,
                    vcs: *vcs,
                    scheme: *scheme,
                    app: hot,
                    txns_per_core: txns,
                    max_cycles,
                    seed: 0x000F_1614 + i as u64,
                    allow_unverified: false,
                });
                (r.stats.avg_total_latency(), r.runtime)
            })
            .collect();
        let xy_runtime = results[0].1.max(1) as f64;
        let mut lrow = vec![app.name.to_string()];
        let mut rrow = vec![app.name.to_string()];
        for (lat, runtime) in results {
            lrow.push(fmt_latency(lat));
            rrow.push(fmt_ratio(runtime as f64 / xy_runtime));
        }
        lat_t.push_row(lrow);
        run_t.push_row(rrow);
    }
    vec![lat_t, run_t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_tables() {
        let ts = run(true);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].rows.len(), 2);
        // XY runtime normalizes to 1.
        let xy: f64 = ts[1].rows[0][1].parse().unwrap();
        assert!((xy - 1.0).abs() < 1e-9);
        // Latencies parse positive.
        for cell in &ts[0].rows[0][1..] {
            let v: f64 = cell.parse().unwrap();
            assert!(v > 0.0);
        }
    }
}
