//! Fig 12: the routing-algorithm deep dive — XY, West-first, oblivious vs
//! adaptive random under escape-VC, SEEC and mSEEC, all with 2 VCs.

use crate::runner::Scheme;
use crate::saturation::latency_curve;
use crate::table::{fmt_latency, FigTable};
use noc_traffic::TrafficPattern;
use noc_types::BaseRouting;

pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Xy,
        Scheme::WestFirst,
        Scheme::EscapeVc {
            normal: BaseRouting::ObliviousMinimal,
        },
        Scheme::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        },
        Scheme::Seec {
            routing: BaseRouting::ObliviousMinimal,
        },
        Scheme::Seec {
            routing: BaseRouting::AdaptiveMinimal,
        },
        Scheme::MSeec {
            routing: BaseRouting::ObliviousMinimal,
        },
        Scheme::MSeec {
            routing: BaseRouting::AdaptiveMinimal,
        },
    ]
}

pub fn panel(pattern: TrafficPattern, quick: bool) -> FigTable {
    let (k, rates, cycles): (u8, Vec<f64>, u64) = if quick {
        (4, vec![0.03, 0.09], 6_000)
    } else {
        (8, (1..=8).map(|i| i as f64 * 0.03).collect(), 20_000)
    };
    let list = schemes();
    let mut cols = vec!["inj_rate".to_string()];
    cols.extend(list.iter().map(|s| s.label()));
    let colrefs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = FigTable::new(
        format!(
            "Fig 12 — routing algorithms under deadlock-free NoCs, {} on {k}x{k} (2 VCs)",
            pattern.label()
        ),
        &colrefs,
    )
    .with_note(
        "paper: XY wins UR except vs mSEEC; adaptive > oblivious; mSEEC best on both patterns",
    );
    let curves: Vec<_> = list
        .iter()
        .map(|&s| latency_curve(k, 2, s, pattern, &rates, cycles))
        .collect();
    for (i, &rate) in rates.iter().enumerate() {
        let mut row = vec![format!("{rate:.3}")];
        for c in &curves {
            row.push(fmt_latency(c[i].avg_latency));
        }
        t.push_row(row);
    }
    t
}

pub fn run(quick: bool) -> Vec<FigTable> {
    [TrafficPattern::UniformRandom, TrafficPattern::Transpose]
        .into_iter()
        .map(|p| panel(p, quick))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_noc_variants_run() {
        let t = panel(TrafficPattern::UniformRandom, true);
        assert_eq!(t.columns.len(), 9);
        for cell in &t.rows[0][1..] {
            let v: f64 = cell.parse().unwrap();
            assert!(v > 0.0);
        }
    }
}
