//! Fig 7: normalized router-area breakdown across schemes.

use crate::table::{fmt_ratio, FigTable};
use noc_power::area::{min_vcs_for_correctness, router_area};
use noc_types::{NetConfig, SchemeKind};

/// Schemes in the paper's Fig 7, left to right.
pub const SCHEMES: [SchemeKind; 5] = [
    SchemeKind::EscapeVc,
    SchemeKind::Spin,
    SchemeKind::Swap,
    SchemeKind::Drain,
    SchemeKind::Seec,
];

/// Regenerates Fig 7: per-scheme component areas, normalized to Escape VC's
/// total.
pub fn run() -> FigTable {
    let cfg = NetConfig::full_system(8, 6, 1);
    let esc_total = router_area(SchemeKind::EscapeVc, &cfg).total();
    let mut t = FigTable::new(
        "Fig 7 — router area breakdown, normalized to Escape VC",
        &[
            "scheme",
            "VCs",
            "buffers",
            "crossbar",
            "allocators",
            "extras",
            "total",
        ],
    )
    .with_note("paper: SEEC ≈ 27% of Escape VC (73% smaller), DRAIN ≈ SEEC");
    for s in SCHEMES {
        let a = router_area(s, &cfg);
        t.push_row(vec![
            s.label().to_string(),
            min_vcs_for_correctness(s).to_string(),
            fmt_ratio(a.buffers / esc_total),
            fmt_ratio(a.crossbar / esc_total),
            fmt_ratio(a.allocators / esc_total),
            fmt_ratio(a.extras / esc_total),
            fmt_ratio(a.total() / esc_total),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_matches_paper() {
        let t = run();
        assert_eq!(t.rows.len(), 5);
        // SEEC's normalized total ≈ 0.27.
        let seec_total: f64 = t.rows[4].last().unwrap().parse().unwrap();
        assert!((0.2..0.35).contains(&seec_total), "SEEC total {seec_total}");
        // Escape VC normalizes to 1.
        let esc_total: f64 = t.rows[0].last().unwrap().parse().unwrap();
        assert!((esc_total - 1.0).abs() < 1e-9);
    }
}
