//! Footnote 4 of the paper, reproduced as an experiment: "Unlike the
//! original paper, TFC does not show low-load latency improvement. Our
//! baseline router is an optimized 1-cycle router, while the TFC paper's
//! baseline was a 4-cycle router."
//!
//! We run TFC against West-first at low load with both router depths; the
//! token bypass skips the pipeline, so the gain should appear only at
//! 4-cycle routers.

use crate::table::{fmt_latency, FigTable};
use noc_baselines::TfcMechanism;
use noc_sim::{NoMechanism, Sim};
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::{BaseRouting, NetConfig, RoutingAlgo};

fn low_load_latency(router_latency: u8, tfc: bool, quick: bool) -> f64 {
    let cycles = if quick { 8_000 } else { 25_000 };
    let cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::WestFirst))
        .with_router_latency(router_latency)
        .with_seed(0xF004);
    let wl = SyntheticWorkload::new(
        TrafficPattern::UniformRandom,
        0.03,
        4,
        4,
        cfg.warmup,
        0xF004,
    );
    let mech: Box<dyn noc_sim::Mechanism> = if tfc {
        Box::new(TfcMechanism::for_net(&cfg))
    } else {
        Box::new(NoMechanism)
    };
    let mut sim = Sim::new(cfg, Box::new(wl), mech);
    sim.run(cycles);
    sim.finish().avg_total_latency()
}

pub fn run(quick: bool) -> FigTable {
    let mut t = FigTable::new(
        "Footnote 4 — TFC's bypass vs router pipeline depth (uniform random @ 0.03, 4x4)",
        &["router_latency", "WF_latency", "TFC_latency", "TFC_gain_%"],
    )
    .with_note("paper: TFC gains vanish against an optimized 1-cycle router");
    for rl in [1u8, 2, 4] {
        let wf = low_load_latency(rl, false, quick);
        let tfc = low_load_latency(rl, true, quick);
        let gain = 100.0 * (wf - tfc) / wf;
        t.push_row(vec![
            rl.to_string(),
            fmt_latency(wf),
            fmt_latency(tfc),
            format!("{gain:.1}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfc_gain_appears_only_with_deep_routers() {
        let t = run(true);
        let gain_1cyc: f64 = t.rows[0][3].parse().unwrap();
        let gain_4cyc: f64 = t.rows[2][3].parse().unwrap();
        assert!(
            gain_1cyc < 3.0,
            "TFC should not beat a 1-cycle router meaningfully: {gain_1cyc}%"
        );
        assert!(
            gain_4cyc > 5.0,
            "TFC must show its bypass against 4-cycle routers: {gain_4cyc}%"
        );
        assert!(gain_4cyc > gain_1cyc);
    }

    #[test]
    fn deeper_routers_cost_latency_for_everyone() {
        let t = run(true);
        let wf1: f64 = t.rows[0][1].parse().unwrap();
        let wf4: f64 = t.rows[2][1].parse().unwrap();
        assert!(
            wf4 > wf1 + 3.0,
            "4-cycle router should be slower: {wf1} vs {wf4}"
        );
    }
}
