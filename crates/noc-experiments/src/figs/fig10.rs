//! Fig 10: (a) share of packets delivered via Free Flow as load rises;
//! (b) latency breakdown of FF vs regular packets (buffered vs bufferless).

use crate::runner::{run_synth, Scheme, SynthSpec};
use crate::table::{fmt_latency, fmt_ratio, FigTable};
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

/// Panel (a): FF fraction vs injection rate, SEEC and mSEEC, UR on 8×8.
pub fn panel_a(quick: bool) -> FigTable {
    let (k, rates, cycles): (u8, Vec<f64>, u64) = if quick {
        (4, vec![0.05, 0.15, 0.30], 6_000)
    } else {
        (8, (1..=8).map(|i| i as f64 * 0.05).collect(), 20_000)
    };
    let mut t = FigTable::new(
        format!("Fig 10a — fraction of received packets that used FF (uniform random, {k}x{k})"),
        &["inj_rate", "SEEC", "mSEEC"],
    )
    .with_note("paper: → ~100% for SEEC post-saturation, ~50% for mSEEC");
    let seec: Vec<f64> = rates
        .par_iter()
        .map(|&r| {
            run_synth(
                SynthSpec::new(k, 4, Scheme::seec(), TrafficPattern::UniformRandom, r)
                    .with_cycles(cycles),
            )
            .ff_fraction()
        })
        .collect();
    let mseec: Vec<f64> = rates
        .par_iter()
        .map(|&r| {
            run_synth(
                SynthSpec::new(k, 4, Scheme::mseec(), TrafficPattern::UniformRandom, r)
                    .with_cycles(cycles),
            )
            .ff_fraction()
        })
        .collect();
    for (i, &r) in rates.iter().enumerate() {
        t.push_row(vec![
            format!("{r:.3}"),
            fmt_ratio(seec[i]),
            fmt_ratio(mseec[i]),
        ]);
    }
    t
}

/// Panel (b): buffered vs bufferless latency split of FF packets, and the
/// regular packets' latency, at low and high load.
pub fn panel_b(quick: bool) -> FigTable {
    let (k, cycles) = if quick { (4, 6_000) } else { (8, 30_000) };
    let loads = [("low", 0.05), ("high", 0.14)];
    let mut t = FigTable::new(
        format!("Fig 10b — latency breakdown, SEEC, uniform random, {k}x{k}"),
        &[
            "load",
            "ff_buffered",
            "ff_bufferless",
            "ff_total",
            "regular_total",
        ],
    )
    .with_note("paper: FF packets are *slower* overall (they were the blocked ones); bufferless part small");
    for (name, rate) in loads {
        let s = run_synth(
            SynthSpec::new(k, 4, Scheme::seec(), TrafficPattern::UniformRandom, rate)
                .with_cycles(cycles),
        );
        let ffb = if s.ff_packets > 0 {
            s.sum_ff_buffered as f64 / s.ff_packets as f64
        } else {
            0.0
        };
        let ffl = if s.ff_packets > 0 {
            s.sum_ff_bufferless as f64 / s.ff_packets as f64
        } else {
            0.0
        };
        let reg = {
            let n = s.ejected_packets - s.ff_packets;
            if n > 0 {
                s.sum_regular_latency as f64 / n as f64
            } else {
                0.0
            }
        };
        t.push_row(vec![
            name.into(),
            fmt_latency(ffb),
            fmt_latency(ffl),
            fmt_latency(ffb + ffl),
            fmt_latency(reg),
        ]);
    }
    t
}

pub fn run(quick: bool) -> Vec<FigTable> {
    vec![panel_a(quick), panel_b(quick)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ff_fraction_grows_with_load() {
        let t = panel_a(true);
        let lo: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let hi: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(
            hi >= lo,
            "FF fraction should not shrink with load: {lo} → {hi}"
        );
        assert!(hi > 0.0, "no FF at high load?");
    }

    #[test]
    fn breakdown_rows_have_consistent_totals() {
        let t = panel_b(true);
        for row in &t.rows {
            let b: f64 = row[1].parse().unwrap();
            let l: f64 = row[2].parse().unwrap();
            let tot: f64 = row[3].parse().unwrap();
            assert!((b + l - tot).abs() < 0.2);
        }
    }
}
