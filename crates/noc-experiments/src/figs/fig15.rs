//! Fig 15: maximum (tail) packet latency per application (log scale in the
//! paper). Adds the SEEC-XY variant: SEEC layered over an inherently
//! deadlock-free routing algorithm — the paper's best tail latency.

use crate::runner::{run_app, AppSpec, Scheme};
use crate::table::FigTable;
use noc_traffic::apps::{AppProfile, APPS};
use noc_types::BaseRouting;
use rayon::prelude::*;

pub fn variants() -> Vec<(String, Scheme, u8, u8)> {
    vec![
        ("XY".into(), Scheme::Xy, 6, 2),
        ("WF".into(), Scheme::WestFirst, 6, 2),
        ("EscVC".into(), Scheme::escape(), 6, 2),
        ("SPIN".into(), Scheme::Spin, 6, 2),
        ("SWAP".into(), Scheme::Swap, 6, 2),
        ("DRAIN".into(), Scheme::Drain, 1, 2),
        ("SEEC".into(), Scheme::seec(), 1, 2),
        (
            "SEEC-XY".into(),
            Scheme::Seec {
                routing: BaseRouting::Xy,
            },
            1,
            2,
        ),
    ]
}

fn apps_subset(quick: bool) -> Vec<&'static AppProfile> {
    if quick {
        APPS.iter().take(2).collect()
    } else {
        APPS.iter().collect()
    }
}

/// Rows = app, columns = variant; cells = max packet latency in cycles.
pub fn run(quick: bool) -> FigTable {
    // Bounded so that wedged baselines cannot burn minutes per point: 60
    // transactions per core complete in ~40k cycles on a live network.
    let txns = if quick { 30 } else { 60 };
    let max_cycles = if quick { 150_000 } else { 400_000 };
    let vars = variants();
    let mut cols = vec!["app".to_string()];
    cols.extend(vars.iter().map(|v| v.0.clone()));
    let colrefs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = FigTable::new(
        "Fig 15 — max packet latency (cycles, plot on log scale), 4x4 mesh",
        &colrefs,
    )
    .with_note("paper: DRAIN worst tail; SPIN ~10x XY; SEEC best; SEEC-XY an order below the rest");
    for app in apps_subset(quick) {
        // Same 2.5x intensity scaling as Fig 14 (see the comment there).
        let mut hot = *app;
        hot.think_time = (hot.think_time / 2.5).max(8.0);
        let maxes: Vec<u64> = vars
            .par_iter()
            .enumerate()
            .map(|(i, (_, scheme, vnets, vcs))| {
                run_app(AppSpec {
                    k: 4,
                    vnets: *vnets,
                    vcs: *vcs,
                    scheme: *scheme,
                    app: hot,
                    txns_per_core: txns,
                    max_cycles,
                    seed: 0x000F_1615 + i as u64,
                    allow_unverified: false,
                })
                .stats
                .max_total_latency
            })
            .collect();
        let mut row = vec![app.name.to_string()];
        row.extend(maxes.iter().map(std::string::ToString::to_string));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_latencies_are_positive() {
        let t = run(true);
        for row in &t.rows {
            for cell in &row[1..] {
                let v: u64 = cell.parse().unwrap();
                assert!(v > 0, "zero tail latency");
            }
        }
    }
}
