//! `noc-chaos`: time-boxed differential chaos soak over randomized fault
//! schedules, with delta-debugged repros.
//!
//! ```text
//! noc_chaos [--budget 300s] [--seed N] [--cases N] [--out DIR] [--full]
//! noc_chaos --quick              # deterministic smoke set (CI, every push)
//! noc_chaos --replay FILE.json   # re-run a minimized repro byte-for-byte
//! ```
//!
//! Exit status is 0 when every executed case passes its oracles (skipped
//! cases — refused by the certification gate — do not fail the run), 1 when
//! any failure was found or a replay did not reproduce. Failures leave a
//! minimized `repro_<key>.json` and, for wedges, a `blackbox_<key>.json`
//! next to the `chaos.jsonl` log in the output directory.

use noc_experiments::chaos::{replay, run_soak, GenPool, SoakOpts};
use noc_experiments::cli;
use std::path::PathBuf;
use std::time::Duration;

/// Parses `300`, `300s`, or `5m` into a duration.
fn parse_budget(s: &str) -> Result<Duration, String> {
    let (num, mult) = match s.strip_suffix('m') {
        Some(n) => (n, 60),
        None => (s.strip_suffix('s').unwrap_or(s), 1),
    };
    num.parse::<u64>()
        .map(|n| Duration::from_secs(n * mult))
        .map_err(|_| format!("bad --budget '{s}' (want e.g. 300s or 5m)"))
}

fn main() {
    let args = cli::args();
    let mut budget = Duration::from_secs(300);
    let mut seed: u64 = 0x5EEC_C4A0;
    let mut max_cases: Option<usize> = None;
    let mut out_dir = PathBuf::from("target/chaos");
    let mut pool = GenPool::Full;
    let mut replay_path: Option<PathBuf> = None;
    let mut quick = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--budget" => match parse_budget(&val("--budget")) {
                Ok(d) => budget = d,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            "--seed" => seed = parse_or_die(&val("--seed"), "--seed"),
            "--cases" => max_cases = Some(parse_or_die(&val("--cases"), "--cases")),
            "--out" => out_dir = PathBuf::from(val("--out")),
            "--full" => pool = GenPool::Full,
            "--quick" => quick = true,
            "--replay" => replay_path = Some(PathBuf::from(val("--replay"))),
            "--help" | "-h" => {
                println!(
                    "usage: noc_chaos [--budget 300s] [--seed N] [--cases N] \
                     [--out DIR] [--quick | --full] [--replay FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (see --help)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = replay_path {
        match replay(&path, &out_dir) {
            Ok(msg) => println!("replay {}: {msg}", path.display()),
            Err(e) => {
                eprintln!("replay {}: FAILED — {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }

    if quick {
        // Deterministic smoke set: fixed seed, mechanism-free pool, small
        // case count. Running this twice must produce identical logs.
        seed = 0x5EEC_0001;
        pool = GenPool::Smoke;
        max_cases = max_cases.or(Some(8));
    }

    let opts = SoakOpts {
        seed,
        budget,
        max_cases,
        out_dir,
        pool,
    };
    let summary = match run_soak(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("soak failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "noc-chaos: {} cases — {} passed, {} skipped, {} failed (seed {:#x}, log {})",
        summary.cases,
        summary.passed,
        summary.skipped,
        summary.failed,
        opts.seed,
        opts.out_dir.join("chaos.jsonl").display(),
    );
    for r in &summary.repros {
        println!("  minimized repro: {}", r.display());
    }
    if summary.failed > 0 {
        std::process::exit(1);
    }
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: '{s}'");
        std::process::exit(2);
    })
}
