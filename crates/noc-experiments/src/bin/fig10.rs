//! Regenerates Fig 10 (FF share and latency breakdown).
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig10::run(quick) {
        println!("{t}");
    }
}
