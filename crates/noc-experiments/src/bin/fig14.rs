//! Regenerates Fig 14 (application latency and runtime).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig14::run(quick) {
        println!("{t}");
    }
}
