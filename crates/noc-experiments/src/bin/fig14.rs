//! Regenerates Fig 14 (application latency and runtime).
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig14::run(quick) {
        println!("{t}");
    }
}
