//! Regenerates Fig 12 (routing-algorithm comparison).
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig12::run(quick) {
        println!("{t}");
    }
}
