//! Regenerates Fig 12 (routing-algorithm comparison).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig12::run(quick) {
        println!("{t}");
    }
}
