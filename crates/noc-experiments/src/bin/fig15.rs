//! Regenerates Fig 15 (application tail latency).
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::fig15::run(quick));
}
