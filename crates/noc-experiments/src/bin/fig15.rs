//! Regenerates Fig 15 (application tail latency).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::fig15::run(quick));
}
