//! Exhaustive bounded model checking of the deadlock-freedom matrix, and
//! the differential cross-check against the CDG certifier.
//!
//! ```text
//! model_check                       # the scheme matrix on small meshes
//! model_check --differential        # cross-certify against noc-verify
//! model_check --scheme adaptive --trace   # print the witness trace
//! model_check --mesh 3x3 --scheme xy --inflight 2
//! ```
//!
//! Exit status is nonzero on any expectation mismatch or differential
//! disagreement, so CI can gate on it directly.

use noc_model::{check, ModelConfig, Scheme, Verdict};

fn value_of(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args = noc_experiments::cli::args();
    let symmetry = !args.iter().any(|a| a == "--no-symmetry");
    let want_trace = args.iter().any(|a| a == "--trace");

    if args.iter().any(|a| a == "--differential") {
        std::process::exit(run_differential());
    }

    if let Some(name) = value_of(&args, "--scheme") {
        let Some(scheme) = Scheme::parse(&name) else {
            eprintln!("unknown scheme: {name}");
            std::process::exit(2);
        };
        let mut cfg = ModelConfig::small(scheme);
        cfg.symmetry = symmetry;
        if let Some(mesh) = value_of(&args, "--mesh") {
            let Some((c, r)) = mesh.split_once('x') else {
                eprintln!("--mesh takes CxR, e.g. 3x3");
                std::process::exit(2);
            };
            cfg.cols = c.parse().unwrap_or(2);
            cfg.rows = r.parse().unwrap_or(2);
        }
        if let Some(v) = value_of(&args, "--vcs") {
            cfg.vcs = v.parse().unwrap_or(cfg.vcs);
        }
        if let Some(p) = value_of(&args, "--inflight") {
            cfg.max_inflight = p.parse().unwrap_or(cfg.max_inflight);
        }
        let r = check(&cfg);
        println!("{}", r.summary());
        if want_trace {
            if let Verdict::DeadlockReachable { trace } = &r.verdict {
                println!("witness trace:\n{}", trace.render());
            }
        }
        return;
    }

    std::process::exit(run_matrix(symmetry, want_trace));
}

/// Every scheme in the matrix against its expected small-mesh verdict.
fn run_matrix(symmetry: bool, want_trace: bool) -> i32 {
    println!("== bounded model checking: scheme matrix ==");
    let mut failures = 0;
    for (scheme, expect_free) in Scheme::MATRIX {
        let mut cfg = ModelConfig::small(scheme);
        cfg.symmetry = symmetry;
        let r = check(&cfg);
        let ok = matches!(r.verdict, Verdict::DeadlockFree) == expect_free
            && !matches!(r.verdict, Verdict::LivelockSuspect { .. });
        println!("{} {}", if ok { "ok  " } else { "FAIL" }, r.summary());
        if let (true, Verdict::DeadlockReachable { trace }) = (want_trace, &r.verdict) {
            println!("{}", trace.render());
        }
        if !ok {
            failures += 1;
        }
    }
    // The lasso detector must itself be validated: RandomWalk livelocks.
    let mut rw = ModelConfig::small(Scheme::RandomWalk);
    rw.symmetry = symmetry;
    rw.max_inflight = 1;
    let r = check(&rw);
    let ok = matches!(r.verdict, Verdict::LivelockSuspect { .. });
    println!("{} {}", if ok { "ok  " } else { "FAIL" }, r.summary());
    if !ok {
        failures += 1;
    }
    println!(
        "{}",
        if failures == 0 {
            "all verdicts match expectations".to_string()
        } else {
            format!("{failures} verdict(s) off expectation")
        }
    );
    i32::from(failures != 0)
}

/// Cross-certification against the CDG certifier's shared matrix.
fn run_differential() -> i32 {
    println!("== differential: model checker vs CDG certifier ==");
    let report = noc_model::run_differential();
    for row in &report.rows {
        let verdicts = format!(
            "cdg={} model={:?}",
            if row.cdg_certified {
                "certified"
            } else {
                "deadlockable"
            },
            row.reach
        );
        match &row.disagreement {
            None => println!(
                "ok    {:<10} {:<40} ({} states)",
                row.scheme.label(),
                verdicts,
                row.states
            ),
            Some(why) => println!("SPLIT {:<10} {verdicts}\n      {why}", row.scheme.label()),
        }
    }
    let n = report.disagreements();
    println!(
        "{}",
        if n == 0 {
            "analyzers agree on every configuration".to_string()
        } else {
            format!("{n} disagreement(s)")
        }
    );
    i32::from(n != 0)
}
