//! Regenerates Fig 13 (SEEC 2 VCs vs escape VC with more VCs).
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::fig13::run(quick));
}
