//! Regenerates Fig 11 (link energy, normalized to West-first).
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::fig11::run(quick));
}
