//! Regenerates Table 3's measured counterpart (seek cost scaling).
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::table3::run(quick));
}
