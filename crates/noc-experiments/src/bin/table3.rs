//! Regenerates Table 3's measured counterpart (seek cost scaling).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::table3::run(quick));
}
