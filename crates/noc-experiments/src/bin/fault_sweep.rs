//! Fault-injection sweep with checkpoint/resume.
//!
//! ```text
//! fault_sweep [--quick] [--ckpt <path>] [--max-points <N>] [--threads <N>]
//! ```
//!
//! Completed datapoints append to the checkpoint (default
//! `results/fault_sweep[_quick].ckpt.jsonl`); re-running with the same
//! checkpoint executes only the missing points. `--max-points` caps how
//! many missing points this invocation runs — CI uses it to simulate an
//! interrupted sweep, then resumes and diffs against an uninterrupted run.
use noc_experiments::figs::fault_sweep;
use noc_experiments::sweep::Checkpoint;
use std::path::PathBuf;

fn main() {
    let rest = noc_experiments::cli::args();
    let mut quick = false;
    let mut ckpt_path: Option<PathBuf> = None;
    let mut max_points: Option<usize> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str, inline: Option<String>| {
            inline.or_else(|| it.next()).unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        if a == "--quick" {
            quick = true;
        } else if a == "--ckpt" || a.starts_with("--ckpt=") {
            let v = value("--ckpt", a.strip_prefix("--ckpt=").map(str::to_string));
            ckpt_path = Some(PathBuf::from(v));
        } else if a == "--max-points" || a.starts_with("--max-points=") {
            let v = value(
                "--max-points",
                a.strip_prefix("--max-points=").map(str::to_string),
            );
            match v.parse::<usize>() {
                Ok(n) => max_points = Some(n),
                Err(_) => {
                    eprintln!("--max-points expects a non-negative integer, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("unknown argument {a:?}");
            eprintln!(
                "usage: fault_sweep [--quick] [--ckpt <path>] [--max-points <N>] [--threads <N>]"
            );
            std::process::exit(2);
        }
    }
    let path = ckpt_path.unwrap_or_else(|| {
        PathBuf::from(if quick {
            "results/fault_sweep_quick.ckpt.jsonl"
        } else {
            "results/fault_sweep.ckpt.jsonl"
        })
    });
    let ckpt = match Checkpoint::open(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot open checkpoint {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let (tables, outcome) = fault_sweep::run(quick, &ckpt, max_points);
    for t in &tables {
        println!("{t}");
        if let Ok(csv) = t.save_csv("results/csv") {
            println!("wrote {csv}");
        }
    }
    println!(
        "sweep: {} executed, {} resumed from checkpoint, {} deferred, {} failed ({})",
        outcome.executed,
        outcome.resumed,
        outcome.deferred,
        outcome.failed,
        ckpt.path().display()
    );
    if outcome.deferred > 0 {
        println!("re-run without --max-points to execute the remaining points");
    }
}
