//! Regenerates Fig 9 (saturation throughput). Pass `--quick` for a reduced
//! sweep, `--threads N` to bound the sweep executor.
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig09::run(quick) {
        println!("{t}");
    }
}
