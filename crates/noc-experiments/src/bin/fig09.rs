//! Regenerates Fig 9 (saturation throughput). Pass `--quick` for a reduced
//! sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig09::run(quick) {
        println!("{t}");
    }
}
