//! Regenerates Fig 8 (latency vs injection rate). Pass `--quick` for a
//! reduced sweep.
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    for t in noc_experiments::figs::fig08::run(quick) {
        println!("{t}");
    }
}
