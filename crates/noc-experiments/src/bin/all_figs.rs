//! Regenerates every table and figure (EXPERIMENTS.md source). Pass
//! `--quick` for reduced sweeps, `--threads N` to bound the sweep executor
//! (default: `NOC_THREADS` or all cores) and `--csv <dir>` to also dump
//! each table as CSV. Cheap artifacts print first; each fig-8 panel prints
//! as soon as it is computed; progress marks go to stderr.
//!
//! `--allow-unverified` disables the `noc-verify` deadlock-freedom gate
//! (otherwise statically-routed schemes refuse uncertified configurations).

use noc_experiments::figs;
use noc_experiments::FigTable;
use noc_traffic::TrafficPattern;
use std::io::Write;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let args = noc_experiments::cli::args();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--allow-unverified") {
        // The figure modules build their specs internally; the env override
        // reaches every run_synth/run_app call.
        std::env::set_var("NOC_ALLOW_UNVERIFIED", "1");
    }
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let emit = |t: FigTable| {
        println!("{t}");
        std::io::stdout().flush().ok();
        if let Some(dir) = &csv_dir {
            match t.save_csv(dir) {
                Ok(p) => eprintln!("wrote {p}"),
                Err(e) => eprintln!("csv error: {e}"),
            }
        }
    };
    let mark = |name: &str| eprintln!("[{:>7.1}s] start {name}", t0.elapsed().as_secs_f64());

    // Cheap, single-table artifacts first.
    mark("fig07");
    emit(figs::fig07::run());
    mark("table1");
    emit(figs::table1::run(quick));
    mark("table3");
    emit(figs::table3::run(quick));
    mark("footnote4");
    emit(figs::footnote4::run(quick));
    mark("ablation");
    emit(figs::ablation::run(quick));
    mark("fig11");
    emit(figs::fig11::run(quick));
    mark("fig10");
    for t in figs::fig10::run(quick) {
        emit(t);
    }
    mark("fig13");
    emit(figs::fig13::run(quick));
    mark("fig12");
    for t in figs::fig12::run(quick) {
        emit(t);
    }
    mark("fig09");
    for t in figs::fig09::run(quick) {
        emit(t);
    }
    mark("fig14");
    for t in figs::fig14::run(quick) {
        emit(t);
    }
    mark("fig15");
    emit(figs::fig15::run(quick));

    // Fig 8 last: the heaviest sweep, one panel at a time.
    let sizes: &[u8] = if quick { &[4] } else { &[4, 8] };
    for &k in sizes {
        for pattern in TrafficPattern::PAPER {
            mark(&format!("fig08 {} {k}x{k}", pattern.label()));
            emit(figs::fig08::panel(pattern, k, quick));
        }
    }
    if !quick {
        mark("fig08 uniform_random 16x16");
        emit(figs::fig08::panel(TrafficPattern::UniformRandom, 16, false));
    }
    mark("done");
}
