//! Regenerates the measured counterpart of Table 1.
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::table1::run(quick));
}
