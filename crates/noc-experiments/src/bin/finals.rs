//! The remaining heavy artifacts, bounded: Figs 14, 15, and the core Fig 8
//! panels. Emits in the same format as `all_figs` (appendable to its output).

use noc_experiments::figs;
use noc_traffic::TrafficPattern;
use std::io::Write;

fn main() {
    noc_experiments::cli::args();
    let emit = |t: noc_experiments::FigTable| {
        println!("{t}");
        std::io::stdout().flush().ok();
    };
    eprintln!("fig14...");
    for t in figs::fig14::run(false) {
        emit(t);
    }
    eprintln!("fig15...");
    emit(figs::fig15::run(false));
    for pattern in TrafficPattern::PAPER {
        eprintln!("fig08 {} 4x4...", pattern.label());
        emit(figs::fig08::panel(pattern, 4, false));
    }
    for pattern in [TrafficPattern::UniformRandom, TrafficPattern::Transpose] {
        eprintln!("fig08 {} 8x8...", pattern.label());
        emit(figs::fig08::panel(pattern, 8, false));
    }
    eprintln!("finals done");
}
