//! Reproduces footnote 4: TFC's bypass gain vs router pipeline depth.
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::footnote4::run(quick));
}
