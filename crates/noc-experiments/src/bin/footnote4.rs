//! Reproduces footnote 4: TFC's bypass gain vs router pipeline depth.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::footnote4::run(quick));
}
