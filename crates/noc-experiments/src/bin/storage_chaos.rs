//! `storage_chaos`: every storage fault at every write site, with a
//! restart and a byte-identical-recovery oracle.
//!
//! ```text
//! storage_chaos [--out DIR] [--max-sites N]
//! ```
//!
//! Enumerates every write operation the reference workload performs (a
//! checkpointed quick sweep plus a whole-file summary artifact), then for
//! each (write op × fault kind) combination — ENOSPC, EIO, torn write,
//! failed rename, crash-after-partial-write — injects exactly that fault,
//! restarts on healthy storage, and asserts the recovered row set is
//! byte-identical to an uninterrupted run with every bad record counted
//! and quarantined. `--max-sites` time-boxes the sweep for CI.
//!
//! Exit status 0 when every combination recovers identically; 1 when any
//! diverged (a `repro_site<N>_<kind>.json` with the exact
//! `NOC_VFS_FAULT_SCHEDULE` lands in the output directory); 2 on bad
//! flags or environment (`NOC_THREADS`, `NOC_BATCH_WIDTH`,
//! `NOC_VFS_FAULT_*` are validated eagerly).

use noc_experiments::cli;
use noc_experiments::storage_chaos::run_storage_chaos;
use std::path::PathBuf;

fn main() {
    let args = cli::args();
    let mut out_dir = PathBuf::from("target/storage_chaos");
    let mut max_sites: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(val("--out")),
            "--max-sites" => {
                max_sites = Some(val("--max-sites").parse().unwrap_or_else(|_| {
                    eprintln!("bad value for --max-sites");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: storage_chaos [--out DIR] [--max-sites N]");
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (see --help)");
                std::process::exit(2);
            }
        }
    }

    let report = match run_storage_chaos(&out_dir, max_sites) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("storage-chaos: harness error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "storage-chaos: {} write sites, {} combinations, {} bad line(s) \
         detected+quarantined, {} divergence(s) — report {}",
        report.sites,
        report.combos,
        report.quarantined,
        report.divergences.len(),
        out_dir.join("storage_chaos.json").display(),
    );
    for d in &report.divergences {
        eprintln!(
            "  DIVERGED at write op {} (schedule \"{}\"): {}",
            d.site, d.schedule, d.detail
        );
    }
    if !report.all_match() {
        std::process::exit(1);
    }
}
