//! Runtime-recovery sweep with checkpoint/resume.
//!
//! ```text
//! recovery_sweep [--quick] [--ckpt <path>] [--max-points <N>] [--threads <N>]
//! ```
//!
//! Series one arms the drain + end-to-end recovery channel on a healthy
//! mesh (it must cost nothing); series two forces a deadlock on the ADAPT
//! baseline and shows the drain channel completing a run the static
//! certifier refuses to let run unprotected. Completed datapoints append to
//! the checkpoint (default `results/recovery_sweep[_quick].ckpt.jsonl`).
use noc_experiments::figs::recovery_sweep;
use noc_experiments::sweep::Checkpoint;
use std::path::PathBuf;

fn main() {
    let rest = noc_experiments::cli::args();
    let mut quick = false;
    let mut ckpt_path: Option<PathBuf> = None;
    let mut max_points: Option<usize> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str, inline: Option<String>| {
            inline.or_else(|| it.next()).unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        if a == "--quick" {
            quick = true;
        } else if a == "--ckpt" || a.starts_with("--ckpt=") {
            let v = value("--ckpt", a.strip_prefix("--ckpt=").map(str::to_string));
            ckpt_path = Some(PathBuf::from(v));
        } else if a == "--max-points" || a.starts_with("--max-points=") {
            let v = value(
                "--max-points",
                a.strip_prefix("--max-points=").map(str::to_string),
            );
            match v.parse::<usize>() {
                Ok(n) => max_points = Some(n),
                Err(_) => {
                    eprintln!("--max-points expects a non-negative integer, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("unknown argument {a:?}");
            eprintln!(
                "usage: recovery_sweep [--quick] [--ckpt <path>] [--max-points <N>] [--threads <N>]"
            );
            std::process::exit(2);
        }
    }
    let path = ckpt_path.unwrap_or_else(|| {
        PathBuf::from(if quick {
            "results/recovery_sweep_quick.ckpt.jsonl"
        } else {
            "results/recovery_sweep.ckpt.jsonl"
        })
    });
    let ckpt = match Checkpoint::open(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot open checkpoint {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let (tables, outcome) = recovery_sweep::run(quick, &ckpt, max_points);
    for t in &tables {
        println!("{t}");
        if let Ok(csv) = t.save_csv("results/csv") {
            println!("wrote {csv}");
        }
    }
    println!(
        "sweep: {} executed, {} resumed from checkpoint, {} deferred, {} failed ({})",
        outcome.executed,
        outcome.resumed,
        outcome.deferred,
        outcome.failed,
        ckpt.path().display()
    );
    if outcome.deferred > 0 {
        println!("re-run without --max-points to execute the remaining points");
    }
}
