//! §4.4.1 ablation: subactive resolution cost below saturation.
fn main() {
    let quick = noc_experiments::cli::args().iter().any(|a| a == "--quick");
    println!("{}", noc_experiments::figs::ablation::run(quick));
}
