//! Regenerates Fig 7 (router area breakdown).
fn main() {
    println!("{}", noc_experiments::figs::fig07::run());
}
