//! Regenerates Fig 7 (router area breakdown).
fn main() {
    noc_experiments::cli::args();
    println!("{}", noc_experiments::figs::fig07::run());
}
