//! Result tables: the rows/series each figure binary prints.

use std::fmt;

/// A simple column-aligned result table with a title and footnote, plus CSV
/// export. Cells are preformatted strings; numeric helpers format to
/// sensible figure precision.
#[derive(Clone, Debug)]
pub struct FigTable {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub note: String,
}

impl FigTable {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> FigTable {
        FigTable {
            title: title.into(),
            columns: columns
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Writes the CSV rendering to `dir/<slug-of-title>.csv` and returns the
    /// path.
    pub fn save_csv(&self, dir: &str) -> std::io::Result<String> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = format!("{dir}/{slug}.csv");
        // Atomic: figure CSVs are published whole or not at all.
        noc_store::active().write_atomic(std::path::Path::new(&path), self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// CSV rendering (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a latency in cycles.
pub fn fmt_latency(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a throughput in packets/node/cycle.
pub fn fmt_throughput(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a ratio/percentage-like quantity.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.3}")
}

impl fmt::Display for FigTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        // Column widths.
        let mut w: Vec<usize> = self.columns.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        if !self.note.is_empty() {
            writeln!(f, "note: {}", self.note)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = FigTable::new("Demo", &["scheme", "latency"]);
        t.push_row(vec!["SEEC".into(), fmt_latency(12.345)]);
        t.push_row(vec!["mSEEC".into(), fmt_latency(9.0)]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("12.3"));
        assert!(s.contains("9.0"));
    }

    #[test]
    fn save_csv_slugifies_title() {
        let mut t = FigTable::new("Fig 9 — saturation (x/y)", &["a"]);
        t.push_row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("seec_csv_test");
        let path = t.save_csv(dir.to_str().unwrap()).unwrap();
        assert!(path.ends_with(".csv"));
        assert!(std::fs::read_to_string(&path).unwrap().contains(
            "a
1"
        ));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = FigTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        let mut t = FigTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
