//! Scheme registry and single-point runners.

use noc_baselines::{
    escape_vc_config, DeflectionKind, DeflectionSim, DrainMechanism, SpinMechanism, SwapMechanism,
    TfcMechanism,
};
use noc_protocol::{ProtocolConfig, ProtocolWorkload};
use noc_sim::network::NocModel;
use noc_sim::{Mechanism, NoMechanism, Sim, Stats};
use noc_traffic::apps::AppProfile;
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::{BaseRouting, NetConfig, RoutingAlgo, SchemeKind};

/// Every `NoC` design point the paper evaluates (Table 4's baseline column
/// plus SEEC/mSEEC). Routing defaults follow the paper: the reactive and
/// subactive schemes use fully-adaptive minimal random; the `routing` fields
/// allow Fig 12/15's variants.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Scheme {
    Xy,
    WestFirst,
    /// Fully-adaptive minimal routing with **no** escape mechanism — the
    /// statically deadlockable baseline the paper motivates SEEC with. Only
    /// runnable behind `allow_unverified` or an armed (and certified)
    /// runtime recovery channel.
    Adaptive,
    Tfc,
    EscapeVc {
        normal: BaseRouting,
    },
    Spin,
    Swap,
    Drain,
    Seec {
        routing: BaseRouting,
    },
    MSeec {
        routing: BaseRouting,
    },
    MinBd,
    Chipper,
}

impl Scheme {
    /// The paper's default variants for headline comparisons.
    pub const HEADLINE: [Scheme; 8] = [
        Scheme::Xy,
        Scheme::WestFirst,
        Scheme::Tfc,
        Scheme::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        },
        Scheme::Spin,
        Scheme::Swap,
        Scheme::Drain,
        Scheme::Seec {
            routing: BaseRouting::AdaptiveMinimal,
        },
    ];

    pub fn seec() -> Scheme {
        Scheme::Seec {
            routing: BaseRouting::AdaptiveMinimal,
        }
    }

    pub fn mseec() -> Scheme {
        Scheme::MSeec {
            routing: BaseRouting::AdaptiveMinimal,
        }
    }

    pub fn escape() -> Scheme {
        Scheme::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        }
    }

    pub fn kind(self) -> SchemeKind {
        match self {
            Scheme::Xy | Scheme::WestFirst | Scheme::Adaptive => SchemeKind::None,
            Scheme::Tfc => SchemeKind::Tfc,
            Scheme::EscapeVc { .. } => SchemeKind::EscapeVc,
            Scheme::Spin => SchemeKind::Spin,
            Scheme::Swap => SchemeKind::Swap,
            Scheme::Drain => SchemeKind::Drain,
            Scheme::Seec { .. } => SchemeKind::Seec,
            Scheme::MSeec { .. } => SchemeKind::MSeec,
            Scheme::MinBd => SchemeKind::MinBd,
            Scheme::Chipper => SchemeKind::Chipper,
        }
    }

    /// Inverse of [`Scheme::label`] for the labels that appear in sweep
    /// rows and job specs. `None` for a label no variant produces, so a
    /// typo in a job submission is a 400, not a silent default.
    pub fn from_label(label: &str) -> Option<Scheme> {
        let s = match label {
            "XY" => Scheme::Xy,
            "WF" => Scheme::WestFirst,
            "ADAPT" => Scheme::Adaptive,
            "TFC" => Scheme::Tfc,
            "EscVC" => Scheme::escape(),
            "EscVC-obl" => Scheme::EscapeVc {
                normal: BaseRouting::ObliviousMinimal,
            },
            "SPIN" => Scheme::Spin,
            "SWAP" => Scheme::Swap,
            "DRAIN" => Scheme::Drain,
            "SEEC" => Scheme::seec(),
            "SEEC-obl" => Scheme::Seec {
                routing: BaseRouting::ObliviousMinimal,
            },
            "SEEC-XY" => Scheme::Seec {
                routing: BaseRouting::Xy,
            },
            "SEEC-WF" => Scheme::Seec {
                routing: BaseRouting::WestFirst,
            },
            "mSEEC" => Scheme::mseec(),
            "mSEEC-obl" => Scheme::MSeec {
                routing: BaseRouting::ObliviousMinimal,
            },
            "minBD" => Scheme::MinBd,
            "CHIPPER" => Scheme::Chipper,
            _ => return None,
        };
        Some(s)
    }

    /// Legend label, matching the paper's figures.
    pub fn label(self) -> String {
        match self {
            Scheme::Xy => "XY".into(),
            Scheme::WestFirst => "WF".into(),
            Scheme::Adaptive => "ADAPT".into(),
            Scheme::Tfc => "TFC".into(),
            Scheme::EscapeVc { normal } => match normal {
                BaseRouting::ObliviousMinimal => "EscVC-obl".into(),
                BaseRouting::AdaptiveMinimal => "EscVC".into(),
                _ => format!("EscVC-{normal:?}"),
            },
            Scheme::Spin => "SPIN".into(),
            Scheme::Swap => "SWAP".into(),
            Scheme::Drain => "DRAIN".into(),
            Scheme::Seec { routing } => match routing {
                BaseRouting::AdaptiveMinimal => "SEEC".into(),
                BaseRouting::ObliviousMinimal => "SEEC-obl".into(),
                BaseRouting::Xy => "SEEC-XY".into(),
                BaseRouting::WestFirst => "SEEC-WF".into(),
            },
            Scheme::MSeec { routing } => match routing {
                BaseRouting::AdaptiveMinimal => "mSEEC".into(),
                BaseRouting::ObliviousMinimal => "mSEEC-obl".into(),
                _ => format!("mSEEC-{routing:?}"),
            },
            Scheme::MinBd => "minBD".into(),
            Scheme::Chipper => "CHIPPER".into(),
        }
    }

    /// Network configuration for this scheme: routing algorithm and — for
    /// escape VC — VC partitioning.
    pub fn configure(self, mut cfg: NetConfig) -> NetConfig {
        match self {
            Scheme::Xy => cfg.with_routing(RoutingAlgo::Uniform(BaseRouting::Xy)),
            Scheme::WestFirst | Scheme::Tfc => {
                cfg.with_routing(RoutingAlgo::Uniform(BaseRouting::WestFirst))
            }
            Scheme::EscapeVc { normal } => escape_vc_config(cfg, normal),
            Scheme::Adaptive | Scheme::Spin | Scheme::Swap | Scheme::Drain => {
                cfg.with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
            }
            Scheme::Seec { routing } | Scheme::MSeec { routing } => {
                cfg.with_routing(RoutingAlgo::Uniform(routing))
            }
            Scheme::MinBd | Scheme::Chipper => {
                // Deflection ignores VC routing; keep the default.
                cfg.vcs_per_vnet = 1;
                cfg
            }
        }
    }

    /// Builds the mechanism object (for VC-router schemes).
    pub fn mechanism(self, cfg: &NetConfig) -> Box<dyn Mechanism> {
        match self {
            Scheme::Tfc => Box::new(TfcMechanism::for_net(cfg)),
            Scheme::Spin => Box::new(SpinMechanism::for_net(cfg)),
            Scheme::Swap => Box::new(SwapMechanism::for_net(cfg)),
            Scheme::Drain => Box::new(DrainMechanism::for_net(cfg)),
            Scheme::Seec { .. } => Box::new(seec::SeecMechanism::for_net(cfg)),
            Scheme::MSeec { .. } => Box::new(seec::MSeecMechanism::for_net(cfg)),
            _ => Box::new(NoMechanism),
        }
    }

    pub fn is_deflection(self) -> bool {
        matches!(self, Scheme::MinBd | Scheme::Chipper)
    }
}

/// One synthetic-traffic design point.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    pub k: u8,
    pub vcs: u8,
    pub scheme: Scheme,
    pub pattern: TrafficPattern,
    /// Packets per node per cycle.
    pub rate: f64,
    pub cycles: u64,
    pub seed: u64,
    /// Skip the `noc-verify` deadlock-freedom gate (see [`verify_gate`]).
    pub allow_unverified: bool,
}

impl SynthSpec {
    pub fn new(k: u8, vcs: u8, scheme: Scheme, pattern: TrafficPattern, rate: f64) -> SynthSpec {
        SynthSpec {
            k,
            vcs,
            scheme,
            pattern,
            rate,
            cycles: 30_000,
            seed: 0xA11CE,
            allow_unverified: false,
        }
    }

    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }
}

/// Refuses to run configurations whose deadlock freedom rests entirely on
/// the static routing relation unless `noc-verify` certifies them.
///
/// Schemes with a runtime escape or recovery mechanism (SEEC, mSEEC, SPIN,
/// SWAP, DRAIN, deflection) are exempt: their correctness argument is
/// dynamic, which is exactly why the paper evaluates them on routing
/// relations the static certifier rejects. `XY`/`WF` (plain turn-model),
/// `EscapeVc` (Duato) and `TFC` (west-first) must hold a certificate.
///
/// Override with `allow_unverified` on the spec or the
/// `NOC_ALLOW_UNVERIFIED` environment variable (the `--allow-unverified`
/// flag of `all_figs`).
fn verify_gate(scheme: Scheme, cfg: &NetConfig, allow_unverified: bool) {
    match scheme.kind() {
        SchemeKind::None | SchemeKind::EscapeVc | SchemeKind::Tfc => {}
        _ => return,
    }
    if allow_unverified || std::env::var_os("NOC_ALLOW_UNVERIFIED").is_some() {
        return;
    }
    let report = noc_verify::certify(cfg);
    assert!(
        report.certified(),
        "refusing to run uncertified configuration for scheme {}:\n{}\
         (set allow_unverified on the spec or NOC_ALLOW_UNVERIFIED=1 to override)",
        scheme.label(),
        report.render()
    );
}

/// Runs one synthetic point to completion and returns its statistics.
pub fn run_synth(spec: SynthSpec) -> Stats {
    let cfg = spec
        .scheme
        .configure(NetConfig::synth(spec.k, spec.vcs))
        .with_seed(spec.seed);
    verify_gate(spec.scheme, &cfg, spec.allow_unverified);
    let wl = SyntheticWorkload::new(
        spec.pattern,
        spec.rate,
        cfg.cols,
        cfg.rows,
        cfg.warmup,
        spec.seed,
    );
    let mut model: Box<dyn NocModel> = if spec.scheme.is_deflection() {
        let kind = if spec.scheme == Scheme::MinBd {
            DeflectionKind::MinBd
        } else {
            DeflectionKind::Chipper
        };
        Box::new(DeflectionSim::new(cfg, kind, Box::new(wl)))
    } else {
        let mech = spec.scheme.mechanism(&cfg);
        Box::new(Sim::new(cfg, Box::new(wl), mech))
    };
    model.run_for(spec.cycles);
    model.finalize()
}

/// One application (closed-loop protocol) design point.
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    pub k: u8,
    /// `VNets`: 6 for the proactive/reactive baselines, 1 for DRAIN/SEEC.
    pub vnets: u8,
    /// VCs per `VNet`.
    pub vcs: u8,
    pub scheme: Scheme,
    pub app: AppProfile,
    /// Transactions per core (fixed work → runtime metric).
    pub txns_per_core: u64,
    pub max_cycles: u64,
    pub seed: u64,
    /// Skip the `noc-verify` deadlock-freedom gate (see [`verify_gate`]).
    pub allow_unverified: bool,
}

/// Result of an application run: network statistics plus the runtime in
/// cycles (the Fig 14 metric).
#[derive(Clone, Debug)]
pub struct AppResult {
    pub stats: Stats,
    pub runtime: u64,
    pub finished: bool,
}

/// Runs one application point: fixed work per core, closed loop.
pub fn run_app(spec: AppSpec) -> AppResult {
    let cfg = spec
        .scheme
        .configure(NetConfig::full_system(spec.k, spec.vnets, spec.vcs))
        .with_seed(spec.seed);
    verify_gate(spec.scheme, &cfg, spec.allow_unverified);
    let pcfg = ProtocolConfig {
        txns_per_core: Some(spec.txns_per_core),
        ..ProtocolConfig::default()
    };
    let wl = ProtocolWorkload::new(
        spec.app,
        pcfg,
        cfg.num_nodes() as u16,
        cfg.warmup,
        spec.seed,
    );
    let mech = spec.scheme.mechanism(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), mech);
    let finished = sim.run_until_done(spec.max_cycles);
    let runtime = sim.net.cycle;
    let stats = sim.finish().clone();
    AppResult {
        stats,
        runtime,
        finished,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_headline_scheme_runs_a_small_point() {
        for scheme in Scheme::HEADLINE {
            let spec = SynthSpec::new(4, 2, scheme, TrafficPattern::UniformRandom, 0.05)
                .with_cycles(5_000);
            let s = run_synth(spec);
            assert!(
                s.ejected_packets > 50,
                "{}: only {} delivered",
                scheme.label(),
                s.ejected_packets
            );
        }
    }

    #[test]
    fn from_label_round_trips_every_named_scheme() {
        let all = [
            Scheme::Xy,
            Scheme::WestFirst,
            Scheme::Adaptive,
            Scheme::Tfc,
            Scheme::escape(),
            Scheme::EscapeVc {
                normal: BaseRouting::ObliviousMinimal,
            },
            Scheme::Spin,
            Scheme::Swap,
            Scheme::Drain,
            Scheme::seec(),
            Scheme::Seec {
                routing: BaseRouting::ObliviousMinimal,
            },
            Scheme::Seec {
                routing: BaseRouting::Xy,
            },
            Scheme::Seec {
                routing: BaseRouting::WestFirst,
            },
            Scheme::mseec(),
            Scheme::MSeec {
                routing: BaseRouting::ObliviousMinimal,
            },
            Scheme::MinBd,
            Scheme::Chipper,
        ];
        for s in all {
            assert_eq!(Scheme::from_label(&s.label()), Some(s), "{}", s.label());
        }
        assert_eq!(Scheme::from_label("SEEK"), None);
        assert_eq!(Scheme::from_label(""), None);
    }

    #[test]
    fn deflection_schemes_run_too() {
        for scheme in [Scheme::MinBd, Scheme::Chipper] {
            let spec = SynthSpec::new(4, 1, scheme, TrafficPattern::UniformRandom, 0.05)
                .with_cycles(5_000);
            let s = run_synth(spec);
            assert!(s.ejected_packets > 50, "{}", scheme.label());
        }
    }

    #[test]
    #[should_panic(expected = "refusing to run uncertified configuration")]
    fn gate_refuses_protocol_cyclic_vnet_mapping() {
        // XY on one shared VNet: routing certifies but the protocol layer
        // self-loops, so the gate must refuse before the simulation starts.
        let spec = AppSpec {
            k: 4,
            vnets: 1,
            vcs: 2,
            scheme: Scheme::Xy,
            app: noc_traffic::apps::APPS[0],
            txns_per_core: 1,
            max_cycles: 100,
            seed: 1,
            allow_unverified: false,
        };
        let _ = run_app(spec);
    }

    #[test]
    fn gate_override_lets_uncertified_configs_run() {
        let spec = AppSpec {
            k: 4,
            vnets: 1,
            vcs: 2,
            scheme: Scheme::Xy,
            app: noc_traffic::apps::APPS[0],
            txns_per_core: 1,
            max_cycles: 2_000,
            seed: 1,
            allow_unverified: true,
        };
        let _ = run_app(spec); // must not panic
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<String> = Scheme::HEADLINE.iter().map(|s| s.label()).collect();
        labels.push(Scheme::mseec().label());
        labels.push(Scheme::Adaptive.label());
        labels.push(Scheme::MinBd.label());
        labels.push(Scheme::Chipper.label());
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
