//! Experiment harness reproducing every table and figure of the SEEC paper.
//!
//! Each `figs::figNN` module regenerates one artifact of the evaluation
//! section and returns a [`table::FigTable`] with the same rows/series the
//! paper plots; the `bin/` binaries print them (`cargo run --release -p
//! noc-experiments --bin fig08`), and the `bench` crate wraps reduced
//! versions under Criterion.
//!
//! Absolute numbers come from this repo's from-scratch simulator, not the
//! authors' gem5 testbed; EXPERIMENTS.md records the shape comparison
//! (who wins, by how much, where crossovers fall) per figure.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod cli;
pub mod job;
pub mod jsonio;
pub mod runner;
pub mod saturation;
pub mod storage_chaos;
pub mod sweep;
pub mod table;

pub mod figs {
    pub mod ablation;
    pub mod fault_sweep;
    pub mod fig07;
    pub mod fig08;
    pub mod fig09;
    pub mod fig10;
    pub mod fig11;
    pub mod fig12;
    pub mod fig13;
    pub mod fig14;
    pub mod fig15;
    pub mod footnote4;
    pub mod recovery_sweep;
    pub mod table1;
    pub mod table3;
}

pub use chaos::{
    minimize, precheck, replay, run_case, run_soak, CaseGen, CaseOutcome, ChaosCase, FailureKind,
    GenPool, SoakOpts, SoakSummary,
};
pub use job::{JobCtx, JobError, JobProgress, JobReport, SimJob};
pub use runner::{run_app, run_synth, AppSpec, Scheme, SynthSpec};
pub use saturation::find_saturation;
pub use storage_chaos::{run_storage_chaos, StorageChaosReport};
pub use sweep::{run_sweep, Checkpoint, FaultPoint, SweepOutcome};
pub use table::FigTable;
