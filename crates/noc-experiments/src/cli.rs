//! Shared command-line handling for the experiment binaries.

/// Reads the process arguments (program name dropped), applies the
/// `--threads N` / `--threads=N` flag to the sweep executor, and returns
/// the remaining arguments for the binary's own flags.
///
/// `--threads` overrides the `NOC_THREADS` environment knob at runtime;
/// `--threads 1` forces strictly sequential sweeps. Results are identical
/// for any thread count — the executor only changes wall-clock time.
pub fn args() -> Vec<String> {
    let mut rest = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        let n = if a == "--threads" {
            argv.next()
        } else {
            a.strip_prefix("--threads=").map(str::to_string)
        };
        match n {
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n >= 1 => rayon::set_num_threads(n),
                _ => {
                    eprintln!("--threads expects a positive integer, got {n:?}");
                    std::process::exit(2);
                }
            },
            None => rest.push(a),
        }
    }
    rest
}
