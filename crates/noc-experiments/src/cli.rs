//! Shared command-line handling for the experiment binaries.

/// Reads the process arguments (program name dropped), applies the
/// `--threads N` / `--threads=N` flag to the sweep executor, and returns
/// the remaining arguments for the binary's own flags.
///
/// Thread-count precedence (documented, never silent):
///
/// 1. `--threads N` on the command line wins;
/// 2. otherwise the `NOC_THREADS` environment variable;
/// 3. otherwise one thread per available core.
///
/// The environment value is validated *eagerly* here, even when `--threads`
/// overrides it: `NOC_THREADS=0` or a non-numeric value is a configuration
/// error and aborts with exit status 2 rather than being silently replaced
/// by a default. When both knobs are set and disagree, a note is printed so
/// the override is visible. `--threads 1` forces strictly sequential sweeps.
/// Results are identical for any thread count — the executor only changes
/// wall-clock time.
/// Batch-width precedence (documented, never silent), mirroring the thread
/// knob:
///
/// 1. an explicit width passed to `run_sweep_with_width` wins;
/// 2. otherwise the `NOC_BATCH_WIDTH` environment variable;
/// 3. otherwise the default width (4 lanes).
///
/// Like `NOC_THREADS`, the variable is validated *eagerly* on startup:
/// `NOC_BATCH_WIDTH=0` or a non-numeric value aborts with exit status 2
/// instead of silently falling back to the default mid-run. Results are
/// identical for any width — batching only changes wall-clock time.
///
/// The storage-fault knobs are validated the same way (see
/// [`validate_vfs_env`]): `NOC_VFS_FAULT_SCHEDULE` must be a well-formed
/// `op:kind[,op:kind...]` list and `NOC_VFS_FAULT_SEED` an unsigned
/// integer; garbage aborts with exit status 2 before any I/O happens.
/// When both are set, explicit schedule events win at their op index and
/// the seed fills the rest. Unset means no fault injection (`StdVfs`).
///
/// The network-fault knobs follow suit (see [`validate_net_env`]):
/// `NOC_NET_FAULT_SCHEDULE` / `NOC_NET_FAULT_SEED` are checked here so a
/// garbage value aborts with exit status 2 before any socket opens, even
/// in binaries that never touch the network (a typo'd knob should fail
/// loudly, not be ignored by the one binary that happens not to read it).
pub fn args() -> Vec<String> {
    let env = match rayon::env_threads() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = crate::sweep::env_batch_width() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    if let Err(e) = validate_vfs_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    if let Err(e) = validate_net_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let mut rest = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        let n = if a == "--threads" {
            argv.next()
        } else {
            a.strip_prefix("--threads=").map(str::to_string)
        };
        match n {
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    if let Some(env_n) = env {
                        if env_n != n {
                            eprintln!("note: --threads {n} overrides NOC_THREADS={env_n}");
                        }
                    }
                    rayon::set_num_threads(n);
                }
                _ => {
                    eprintln!("--threads expects a positive integer, got {n:?}");
                    std::process::exit(2);
                }
            },
            None => rest.push(a),
        }
    }
    rest
}

/// Eagerly validates the `NOC_VFS_FAULT_SCHEDULE` / `NOC_VFS_FAULT_SEED`
/// environment knobs, same contract as `NOC_THREADS`: unset means "no
/// fault injection", garbage is an error for the caller to turn into exit
/// status 2 — never a silent fallback to fault-free I/O (a soak that
/// silently stopped injecting would report vacuous green).
pub fn validate_vfs_env() -> Result<(), String> {
    noc_store::FaultPlan::from_env(
        std::env::var("NOC_VFS_FAULT_SCHEDULE").ok().as_deref(),
        std::env::var("NOC_VFS_FAULT_SEED").ok().as_deref(),
    )
    .map(|_| ())
}

/// Eagerly validates the `NOC_NET_FAULT_SCHEDULE` / `NOC_NET_FAULT_SEED`
/// environment knobs — the network twin of [`validate_vfs_env`], same
/// contract: unset means "no fault injection", garbage is an error for
/// the caller to turn into exit status 2, never a silent fallback to a
/// fault-free transport.
pub fn validate_net_env() -> Result<(), String> {
    noc_net::validate_env()
}
