//! Minimal hand-rolled JSON for checkpoint rows (`results/*.ckpt.jsonl`)
//! and watchdog black-box dumps (`results/blackbox_*.json`).
//!
//! The workspace's `serde` is a no-op compatibility marker, so the sweep
//! runner writes and re-reads its own JSON. Checkpoint rows are *flat*
//! single-line objects (strings, numbers, booleans) handled by
//! [`parse_flat`]; the parser is deliberately tolerant — an unparseable
//! line in a checkpoint (e.g. a torn write from a killed process) is
//! skipped, never fatal, so a crashed sweep can always resume. Black-box
//! dumps are *nested* documents (arrays of per-VC objects, a wait-cycle
//! witness, …) handled by [`parse_value`], which post-mortem tooling and
//! the schema tests use to read a dump back.

use std::collections::BTreeMap;

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one flat JSON object, rendered on a single line.
///
/// Field order is exactly insertion order, so two runs that record the same
/// datapoint produce byte-identical rows — which is what lets CI diff a
/// resumed sweep against an uninterrupted one.
#[derive(Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    pub fn new() -> JsonObj {
        JsonObj { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str_field(mut self, key: &str, val: &str) -> Self {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\": \"{}\"", escape(key), escape(val)));
        self
    }

    /// Adds a numeric/boolean field rendered exactly as `val` displays.
    /// The caller is responsible for `val` being valid bare JSON (integer,
    /// `{:.N}` float, `true`/`false`).
    #[must_use]
    pub fn raw_field(mut self, key: &str, val: &str) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\": {val}", escape(key)));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn u64_field(self, key: &str, val: u64) -> Self {
        self.raw_field(key, &val.to_string())
    }

    /// Adds a float field with a fixed number of decimals (stable across
    /// runs — never uses the shortest-roundtrip formatter).
    #[must_use]
    pub fn f64_field(self, key: &str, val: f64, decimals: usize) -> Self {
        self.raw_field(key, &format!("{val:.decimals$}"))
    }

    /// Renders the object as one line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Parses one flat JSON object line into a key → raw-value map.
///
/// Values are returned unescaped for strings and verbatim for bare tokens
/// (numbers, booleans). Returns `None` on anything that is not a flat
/// object — nested objects/arrays, torn lines, garbage.
pub fn parse_flat(line: &str) -> Option<BTreeMap<String, String>> {
    let s = line.trim();
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    let mut chars = inner.char_indices().peekable();

    // Scans a JSON string starting at the opening quote; returns the
    // unescaped contents, leaving the iterator just past the closing quote.
    fn scan_string(chars: &mut std::iter::Peekable<std::str::CharIndices>) -> Option<String> {
        match chars.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        let mut out = String::new();
        loop {
            let (_, c) = chars.next()?;
            match c {
                '"' => return Some(out),
                '\\' => {
                    let (_, e) = chars.next()?;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars.next()?;
                                code = code * 16 + h.to_digit(16)?;
                            }
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    loop {
        // Skip whitespace and separators before a key.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Some(map);
        }
        let key = scan_string(&mut chars)?;
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek() {
            Some((_, '"')) => scan_string(&mut chars)?,
            // Nested values mean the line is not flat; torn lines end early.
            Some((_, '{' | '[')) | None => return None,
            Some(_) => {
                let mut tok = String::new();
                while let Some((_, c)) = chars.peek() {
                    if *c == ',' {
                        break;
                    }
                    tok.push(*c);
                    chars.next();
                }
                tok.trim().to_string()
            }
        };
        map.insert(key, val);
    }
}

/// A parsed JSON value, for reading *nested* documents (the watchdog
/// black-box dumps). Checkpoint rows stay on the flat [`parse_flat`] path.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64`; the dumps' counters are well within
    /// the 2^53 exact-integer range.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Nesting cap for [`parse_value`]: deep enough for any dump this
/// workspace writes (depth 3), shallow enough that a corrupt file cannot
/// recurse the parser off the stack.
const MAX_DEPTH: u32 = 64;

/// Parses a complete JSON document (nested objects and arrays allowed)
/// into a [`JsonValue`]. Returns `None` on malformed or truncated input —
/// tolerant like [`parse_flat`], never panicking on a torn dump.
pub fn parse_value(text: &str) -> Option<JsonValue> {
    let mut p = ValueParser {
        chars: text.chars().peekable(),
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.chars.peek().is_some() {
        return None; // trailing garbage
    }
    Some(v)
}

struct ValueParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl ValueParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Option<JsonValue> {
        for expect in word.chars() {
            if self.chars.next()? != expect {
                return None;
            }
        }
        Some(v)
    }

    /// Scans a string starting at the opening quote; same escape set the
    /// writer produces.
    fn string(&mut self) -> Option<String> {
        if self.chars.next()? != '"' {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.chars.next()? {
                '"' => return Some(out),
                '\\' => match self.chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + self.chars.next()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let mut tok = String::new();
        while let Some(c) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                tok.push(*c);
                self.chars.next();
            } else {
                break;
            }
        }
        tok.parse::<f64>().ok().map(JsonValue::Num)
    }

    fn value(&mut self, depth: u32) -> Option<JsonValue> {
        if depth > MAX_DEPTH {
            return None;
        }
        self.skip_ws();
        match *self.chars.peek()? {
            'n' => self.literal("null", JsonValue::Null),
            't' => self.literal("true", JsonValue::Bool(true)),
            'f' => self.literal("false", JsonValue::Bool(false)),
            '"' => self.string().map(JsonValue::Str),
            '[' => {
                self.chars.next();
                let mut items = Vec::new();
                self.skip_ws();
                if self.chars.peek() == Some(&']') {
                    self.chars.next();
                    return Some(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.chars.next()? {
                        ']' => return Some(JsonValue::Arr(items)),
                        ',' => {}
                        _ => return None,
                    }
                }
            }
            '{' => {
                self.chars.next();
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.chars.peek() == Some(&'}') {
                    self.chars.next();
                    return Some(JsonValue::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.chars.next()? != ':' {
                        return None;
                    }
                    map.insert(key, self.value(depth + 1)?);
                    self.skip_ws();
                    match self.chars.next()? {
                        '}' => return Some(JsonValue::Obj(map)),
                        ',' => {}
                        _ => return None,
                    }
                }
            }
            _ => self.number(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_flat_object() {
        let line = JsonObj::new()
            .str_field("key", "abc123")
            .str_field("scheme", "SEEC")
            .f64_field("rate", 0.06, 4)
            .u64_field("cycles", 30_000)
            .raw_field("ok", "true")
            .finish();
        let map = parse_flat(&line).expect("must parse");
        assert_eq!(map["key"], "abc123");
        assert_eq!(map["scheme"], "SEEC");
        assert_eq!(map["rate"], "0.0600");
        assert_eq!(map["cycles"], "30000");
        assert_eq!(map["ok"], "true");
    }

    #[test]
    fn escapes_survive_the_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let line = JsonObj::new().str_field("msg", nasty).finish();
        let map = parse_flat(&line).expect("must parse");
        assert_eq!(map["msg"], nasty);
    }

    #[test]
    fn torn_and_nested_lines_are_rejected_not_fatal() {
        assert!(parse_flat("").is_none());
        assert!(parse_flat("{\"a\": 1").is_none()); // torn write
        assert!(parse_flat("{\"a\": {\"b\": 1}}").is_none()); // nested
        assert!(parse_flat("not json at all").is_none());
        assert!(parse_flat("{\"a\"}").is_none());
    }

    #[test]
    fn nested_parser_reads_objects_arrays_and_scalars() {
        let doc = r#"{
            "schema": "noc-blackbox-v1",
            "cycle": 4096,
            "ratio": -1.5e2,
            "config": {"cols": 4, "rows": 4},
            "occupancy": [
                {"node": 0, "routed": false, "head_wait_since": null},
                {"node": 1, "routed": true, "head_wait_since": 37}
            ],
            "wait_cycle": null,
            "empty_arr": [],
            "empty_obj": {}
        }"#;
        let v = parse_value(doc).expect("must parse");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("noc-blackbox-v1"));
        assert_eq!(v.get("cycle").unwrap().as_u64(), Some(4096));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(-150.0));
        assert_eq!(v.get("ratio").unwrap().as_u64(), None, "negative");
        let cfg = v.get("config").unwrap();
        assert_eq!(cfg.get("cols").unwrap().as_u64(), Some(4));
        let occ = v.get("occupancy").unwrap().as_array().unwrap();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].get("routed"), Some(&JsonValue::Bool(false)));
        assert!(occ[0].get("head_wait_since").unwrap().is_null());
        assert_eq!(occ[1].get("head_wait_since").unwrap().as_u64(), Some(37));
        assert!(v.get("wait_cycle").unwrap().is_null());
        assert_eq!(v.get("empty_arr").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.get("empty_obj"), Some(&JsonValue::Obj(BTreeMap::new())));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_parser_rejects_torn_and_malformed_documents() {
        assert!(parse_value("").is_none());
        assert!(parse_value("{\"a\": [1, 2").is_none()); // torn mid-array
        assert!(parse_value("{\"a\": 1} trailing").is_none());
        assert!(parse_value("{\"a\" 1}").is_none()); // missing colon
        assert!(parse_value("[1 2]").is_none()); // missing comma
        assert!(parse_value("{\"a\": nul}").is_none());
        // Recursion bomb: deeper than MAX_DEPTH must fail, not overflow.
        let bomb = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse_value(&bomb).is_none());
    }

    #[test]
    fn nested_parser_roundtrips_flat_writer_output() {
        let line = JsonObj::new()
            .str_field("msg", "a\"b\\c\nd")
            .u64_field("n", 42)
            .raw_field("flag", "true")
            .finish();
        let v = parse_value(&line).expect("writer output must parse");
        assert_eq!(v.get("msg").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("flag"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn identical_inputs_render_identical_lines() {
        let mk = || {
            JsonObj::new()
                .str_field("k", "v")
                .f64_field("x", 1.0 / 3.0, 6)
                .finish()
        };
        assert_eq!(mk(), mk());
    }
}
