//! Minimal hand-rolled JSON for checkpoint rows (`results/*.ckpt.jsonl`).
//!
//! The workspace's `serde` is a no-op compatibility marker, so the sweep
//! runner writes and re-reads its own JSON. Only *flat* objects are needed:
//! one checkpoint row is a single-line object whose values are strings,
//! numbers or booleans. The parser is deliberately tolerant — an
//! unparseable line in a checkpoint (e.g. a torn write from a killed
//! process) is skipped, never fatal, so a crashed sweep can always resume.

use std::collections::BTreeMap;

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one flat JSON object, rendered on a single line.
///
/// Field order is exactly insertion order, so two runs that record the same
/// datapoint produce byte-identical rows — which is what lets CI diff a
/// resumed sweep against an uninterrupted one.
#[derive(Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    pub fn new() -> JsonObj {
        JsonObj { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str_field(mut self, key: &str, val: &str) -> Self {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\": \"{}\"", escape(key), escape(val)));
        self
    }

    /// Adds a numeric/boolean field rendered exactly as `val` displays.
    /// The caller is responsible for `val` being valid bare JSON (integer,
    /// `{:.N}` float, `true`/`false`).
    #[must_use]
    pub fn raw_field(mut self, key: &str, val: &str) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\": {val}", escape(key)));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn u64_field(self, key: &str, val: u64) -> Self {
        self.raw_field(key, &val.to_string())
    }

    /// Adds a float field with a fixed number of decimals (stable across
    /// runs — never uses the shortest-roundtrip formatter).
    #[must_use]
    pub fn f64_field(self, key: &str, val: f64, decimals: usize) -> Self {
        self.raw_field(key, &format!("{val:.decimals$}"))
    }

    /// Renders the object as one line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Parses one flat JSON object line into a key → raw-value map.
///
/// Values are returned unescaped for strings and verbatim for bare tokens
/// (numbers, booleans). Returns `None` on anything that is not a flat
/// object — nested objects/arrays, torn lines, garbage.
pub fn parse_flat(line: &str) -> Option<BTreeMap<String, String>> {
    let s = line.trim();
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    let mut chars = inner.char_indices().peekable();

    // Scans a JSON string starting at the opening quote; returns the
    // unescaped contents, leaving the iterator just past the closing quote.
    fn scan_string(chars: &mut std::iter::Peekable<std::str::CharIndices>) -> Option<String> {
        match chars.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        let mut out = String::new();
        loop {
            let (_, c) = chars.next()?;
            match c {
                '"' => return Some(out),
                '\\' => {
                    let (_, e) = chars.next()?;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars.next()?;
                                code = code * 16 + h.to_digit(16)?;
                            }
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    loop {
        // Skip whitespace and separators before a key.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Some(map);
        }
        let key = scan_string(&mut chars)?;
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek() {
            Some((_, '"')) => scan_string(&mut chars)?,
            // Nested values mean the line is not flat; torn lines end early.
            Some((_, '{' | '[')) | None => return None,
            Some(_) => {
                let mut tok = String::new();
                while let Some((_, c)) = chars.peek() {
                    if *c == ',' {
                        break;
                    }
                    tok.push(*c);
                    chars.next();
                }
                tok.trim().to_string()
            }
        };
        map.insert(key, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_flat_object() {
        let line = JsonObj::new()
            .str_field("key", "abc123")
            .str_field("scheme", "SEEC")
            .f64_field("rate", 0.06, 4)
            .u64_field("cycles", 30_000)
            .raw_field("ok", "true")
            .finish();
        let map = parse_flat(&line).expect("must parse");
        assert_eq!(map["key"], "abc123");
        assert_eq!(map["scheme"], "SEEC");
        assert_eq!(map["rate"], "0.0600");
        assert_eq!(map["cycles"], "30000");
        assert_eq!(map["ok"], "true");
    }

    #[test]
    fn escapes_survive_the_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let line = JsonObj::new().str_field("msg", nasty).finish();
        let map = parse_flat(&line).expect("must parse");
        assert_eq!(map["msg"], nasty);
    }

    #[test]
    fn torn_and_nested_lines_are_rejected_not_fatal() {
        assert!(parse_flat("").is_none());
        assert!(parse_flat("{\"a\": 1").is_none()); // torn write
        assert!(parse_flat("{\"a\": {\"b\": 1}}").is_none()); // nested
        assert!(parse_flat("not json at all").is_none());
        assert!(parse_flat("{\"a\"}").is_none());
    }

    #[test]
    fn identical_inputs_render_identical_lines() {
        let mk = || {
            JsonObj::new()
                .str_field("k", "v")
                .f64_field("x", 1.0 / 3.0, 6)
                .finish()
        };
        assert_eq!(mk(), mk());
    }
}
