//! Resumable simulation jobs: the unit of work `noc-serve` schedules.
//!
//! A [`SimJob`] wraps one of the repo's long-running workloads — a fault
//! sweep, a chaos soak, or a repro replay — behind a single contract:
//!
//! * **resumable** — progress is journaled to an append-only `*.jsonl`
//!   checkpoint keyed by content addresses, so re-running the same job
//!   after a crash (or `kill -9`) re-executes only the missing units and
//!   the finished journal is byte-identical to an uninterrupted run's;
//! * **cancellable** — a [`rayon::CancelToken`] (explicit cancel or
//!   deadline) is observed at unit granularity, and interruption is a
//!   distinct, typed outcome ([`JobError::Interrupted`]), never a failure;
//! * **observable** — an optional progress callback fires after every
//!   completed unit with done/total/failed counts.
//!
//! The service layer owns retries, backoff and quarantine; this layer owns
//! determinism and the resume contract.

use std::path::{Path, PathBuf};

use crate::chaos::{self, CaseGen, CaseOutcome, ChaosCase, GenPool};
use crate::jsonio::JsonObj;
use crate::sweep::{run_sweep_ctx, Checkpoint, FaultPoint, SweepCtx, SweepProgress};

/// Live progress of a running job, delivered after every completed unit
/// (sweep point, chaos case, or replayed repro).
#[derive(Clone, Copy, Debug, Default)]
pub struct JobProgress {
    /// Units finished so far, including those adopted from a previous
    /// attempt's journal.
    pub done: usize,
    /// Total units in the job.
    pub total: usize,
    /// Units that finished with a `"status": "failed"` row this run.
    pub failed: usize,
}

/// Execution context handed to [`SimJob::run`] by the scheduler.
pub struct JobCtx<'a> {
    /// Cooperative cancellation: explicit cancel, deadline expiry, or
    /// service drain. Checked between units and between watchdog slices
    /// inside a sweep point.
    pub cancel: &'a rayon::CancelToken,
    /// Fired after every completed unit.
    pub progress: Option<&'a (dyn Fn(JobProgress) + Sync)>,
    /// Where black-box dumps and repro files for failing units land.
    pub dump_dir: &'a Path,
    /// Storage layer for the job's journals and repro artifacts. `None`
    /// uses the process-wide [`noc_store::active`]; the service passes its
    /// own handle so a fault-injected run covers job I/O too.
    pub vfs: Option<std::sync::Arc<dyn noc_store::Vfs>>,
}

impl JobCtx<'_> {
    fn vfs(&self) -> std::sync::Arc<dyn noc_store::Vfs> {
        self.vfs.clone().unwrap_or_else(noc_store::active)
    }
}

/// Terminal summary of a completed (not interrupted) job.
#[derive(Clone, Debug, Default)]
pub struct JobReport {
    /// Units finished over the job's lifetime (this run + resumed).
    pub done: usize,
    pub total: usize,
    /// Units recorded as failed (the job itself still completed: a failed
    /// datapoint is data, not a scheduler error).
    pub failed: usize,
    /// Units adopted from a previous attempt's journal instead of re-run.
    pub resumed: usize,
    /// Torn journal lines repaired away (quarantined + compacted) when the
    /// journal was opened — a crashed previous writer, now accounted for
    /// instead of silently discarded.
    pub repaired_lines: usize,
    /// CRC-failed journal lines repaired away at open — bit rot or a torn
    /// sector inside a record, detected by the per-record trailer.
    pub corrupt_lines: usize,
    /// The journal holding one row per unit, when the job keeps one.
    pub rows: Option<PathBuf>,
    /// One-line human summary.
    pub summary: String,
}

/// Why a job did not produce a [`JobReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The cancellation token fired: explicit cancel or deadline. All
    /// completed units are journaled; the rest re-execute on resume.
    Interrupted(rayon::CancelReason),
    /// The job cannot run or finish (bad spec, unreadable repro, I/O
    /// error). Deterministic — retrying without a fix will fail again.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Interrupted(r) => write!(f, "interrupted: {r:?}"),
            JobError::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

/// One schedulable workload. Construction fixes every knob (content
/// addressing happens over these fields), execution is deterministic.
pub enum SimJob {
    /// Run every point of a fault sweep, checkpointing to `ckpt`.
    Sweep {
        points: Vec<FaultPoint>,
        ckpt: PathBuf,
        /// Lockstep batch width (explicit here so jobs do not race on the
        /// process environment; the service resolves `NOC_BATCH_WIDTH`
        /// once at startup).
        width: usize,
    },
    /// Generate and run `cases` chaos cases from `seed`, logging one row
    /// per case to `log`; failing cases additionally write a repro file
    /// into the dump directory.
    Chaos {
        seed: u64,
        cases: usize,
        pool: GenPool,
        log: PathBuf,
    },
    /// Replay a recorded repro file and verify the failure reproduces
    /// byte-identically.
    Replay { repro: PathBuf },
}

impl SimJob {
    /// Total units this job consists of.
    pub fn total_units(&self) -> usize {
        match self {
            SimJob::Sweep { points, .. } => points.len(),
            SimJob::Chaos { cases, .. } => *cases,
            SimJob::Replay { .. } => 1,
        }
    }

    /// Executes the job to completion, resuming from its journal when one
    /// exists. Returns [`JobError::Interrupted`] the moment the token's
    /// firing is observed at a unit boundary.
    pub fn run(&self, ctx: &JobCtx<'_>) -> Result<JobReport, JobError> {
        match self {
            SimJob::Sweep {
                points,
                ckpt,
                width,
            } => run_sweep_job(points, ckpt, *width, ctx),
            SimJob::Chaos {
                seed,
                cases,
                pool,
                log,
            } => run_chaos_job(*seed, *cases, *pool, log, ctx),
            SimJob::Replay { repro } => run_replay_job(repro, ctx),
        }
    }
}

fn interrupted(token: &rayon::CancelToken) -> JobError {
    JobError::Interrupted(token.reason().unwrap_or(rayon::CancelReason::Cancelled))
}

fn run_sweep_job(
    points: &[FaultPoint],
    ckpt_path: &Path,
    width: usize,
    ctx: &JobCtx<'_>,
) -> Result<JobReport, JobError> {
    let ckpt = Checkpoint::open_with_vfs(ckpt_path, ctx.vfs())
        .map_err(|e| JobError::Failed(format!("cannot open {}: {e}", ckpt_path.display())))?;
    let forward = |p: SweepProgress| {
        if let Some(cb) = ctx.progress {
            cb(JobProgress {
                done: p.done,
                total: p.total,
                failed: p.failed,
            });
        }
    };
    let sctx = SweepCtx {
        cancel: ctx.cancel,
        progress: Some(&forward),
    };
    let o = run_sweep_ctx(points, &ckpt, None, ctx.dump_dir, width, Some(&sctx));
    // A journal that stopped persisting parks the job as interrupted —
    // completed rows are safe, missing points re-execute on resume — and
    // the reason is storage, NOT the shared cancel token: latching that
    // token would poison the eventual retry.
    if ckpt.write_failed() {
        return Err(JobError::Interrupted(rayon::CancelReason::StorageDegraded));
    }
    if o.interrupted > 0 || ctx.cancel.is_cancelled() {
        return Err(interrupted(ctx.cancel));
    }
    Ok(JobReport {
        done: o.resumed + o.executed,
        total: points.len(),
        failed: o.failed,
        resumed: o.resumed,
        repaired_lines: ckpt.torn_dropped(),
        corrupt_lines: ckpt.corrupt_dropped(),
        rows: Some(ckpt_path.to_path_buf()),
        summary: format!(
            "sweep: {} executed, {} resumed, {} failed",
            o.executed, o.resumed, o.failed
        ),
    })
}

fn run_chaos_job(
    seed: u64,
    cases: usize,
    pool: GenPool,
    log_path: &Path,
    ctx: &JobCtx<'_>,
) -> Result<JobReport, JobError> {
    // The chaos log reuses the sweep checkpoint machinery: append-only
    // keyed rows, torn-final-line repair, atomic compaction. Case keys are
    // content addresses, and the generator is a pure function of the seed,
    // so "skip rows already present" is exactly "resume".
    let ckpt = Checkpoint::open_with_vfs(log_path, ctx.vfs())
        .map_err(|e| JobError::Failed(format!("cannot open {}: {e}", log_path.display())))?;
    let mut gen = CaseGen::new(seed, pool);
    let mut done = 0usize;
    let mut resumed = 0usize;
    let mut failed = 0usize;
    for _ in 0..cases {
        let case = gen.next_case();
        let key = case.key();
        if ckpt.is_done(&key) {
            done += 1;
            resumed += 1;
            continue;
        }
        if ctx.cancel.is_cancelled() {
            return Err(interrupted(ctx.cancel));
        }
        let (status, was_failure) = run_chaos_case(&case, &ckpt, ctx.dump_dir);
        if ckpt.write_failed() {
            // The case's row never landed: park as storage-interrupted so
            // the case re-executes once the journal persists again.
            return Err(JobError::Interrupted(rayon::CancelReason::StorageDegraded));
        }
        done += 1;
        if was_failure {
            failed += 1;
        }
        let _ = status;
        if let Some(cb) = ctx.progress {
            cb(JobProgress {
                done,
                total: cases,
                failed,
            });
        }
    }
    Ok(JobReport {
        done,
        total: cases,
        failed,
        resumed,
        repaired_lines: ckpt.torn_dropped(),
        corrupt_lines: ckpt.corrupt_dropped(),
        rows: Some(log_path.to_path_buf()),
        summary: format!("chaos: {done} cases, {resumed} resumed, {failed} failed"),
    })
}

/// Runs one chaos case and records its row; returns `(status, was_failure)`.
fn run_chaos_case(case: &ChaosCase, ckpt: &Checkpoint, dump_dir: &Path) -> (String, bool) {
    let base = |status: &str| {
        JsonObj::new()
            .str_field("key", &case.key())
            .str_field("scheme", &case.scheme.label())
            .str_field("pattern", case.pattern.label())
            .f64_field("rate", case.rate, 6)
            .u64_field("seed", case.seed)
            .str_field("status", status)
    };
    // Persistence failures latch `ckpt.write_failed()`, which the caller
    // checks after every case — an unpersisted row parks the job.
    if let Err(e) = chaos::precheck(case) {
        let _ = ckpt.record(&base("skipped").str_field("reason", &e).finish());
        return ("skipped".into(), false);
    }
    match chaos::run_case(case, dump_dir) {
        CaseOutcome::Pass(report) => {
            let _ = ckpt.record(
                &base("pass")
                    .str_field("digest", &format!("{:016x}", report.digest))
                    .u64_field("delivered", report.delivered)
                    .finish(),
            );
            ("pass".into(), false)
        }
        CaseOutcome::Saturated(why) => {
            let _ = ckpt.record(&base("saturated").str_field("reason", &why).finish());
            ("saturated".into(), false)
        }
        CaseOutcome::Fail(f) => {
            // Persist a replayable repro next to the black-box dumps.
            // Atomic: a half-written repro that replays differently would
            // be worse than none.
            let repro = dump_dir.join(format!("repro_{}.jsonl", case.key()));
            let line = chaos::repro_line(case, &f);
            let _ = ckpt
                .vfs()
                .write_atomic(&repro, format!("{line}\n").as_bytes());
            let _ = ckpt.record(
                &base("failed")
                    .str_field("reason", &format!("{}: {}", f.kind.label(), f.detail))
                    .str_field("repro", &repro.display().to_string())
                    .finish(),
            );
            ("failed".into(), true)
        }
    }
}

fn run_replay_job(repro: &Path, ctx: &JobCtx<'_>) -> Result<JobReport, JobError> {
    if ctx.cancel.is_cancelled() {
        return Err(interrupted(ctx.cancel));
    }
    let verdict = chaos::replay(repro, ctx.dump_dir).map_err(JobError::Failed)?;
    if let Some(cb) = ctx.progress {
        cb(JobProgress {
            done: 1,
            total: 1,
            failed: 0,
        });
    }
    Ok(JobReport {
        done: 1,
        total: 1,
        failed: 0,
        resumed: 0,
        repaired_lines: 0,
        corrupt_lines: 0,
        rows: None,
        summary: verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scheme;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_point(scheme: Scheme, transient: f64) -> FaultPoint {
        FaultPoint::quick("job-test", scheme, transient)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seec_job_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn quiet<'a>(token: &'a rayon::CancelToken, dump: &'a Path) -> JobCtx<'a> {
        JobCtx {
            cancel: token,
            progress: None,
            dump_dir: dump,
            vfs: None,
        }
    }

    #[test]
    fn sweep_job_completes_resumes_and_reports_progress() {
        let dir = tmpdir("sweep");
        let ckpt = dir.join("s.ckpt.jsonl");
        let job = SimJob::Sweep {
            points: vec![
                quick_point(Scheme::seec(), 0.0),
                quick_point(Scheme::mseec(), 0.0),
            ],
            ckpt: ckpt.clone(),
            width: 2,
        };
        assert_eq!(job.total_units(), 2);
        let token = rayon::CancelToken::new();
        let seen = AtomicUsize::new(0);
        let cb = |p: JobProgress| seen.store(p.done, Ordering::Relaxed);
        let ctx = JobCtx {
            cancel: &token,
            progress: Some(&cb),
            dump_dir: &dir,
            vfs: None,
        };
        let r = job.run(&ctx).expect("job completes");
        assert_eq!((r.done, r.total, r.resumed), (2, 2, 0));
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(r.rows.as_deref(), Some(ckpt.as_path()));
        // Second run resumes everything without re-executing.
        let r = job.run(&ctx).expect("resume completes");
        assert_eq!((r.done, r.resumed), (2, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_sweep_job_is_interrupted_not_failed() {
        let dir = tmpdir("sweep_cancel");
        let job = SimJob::Sweep {
            points: vec![quick_point(Scheme::seec(), 0.0)],
            ckpt: dir.join("c.ckpt.jsonl"),
            width: 1,
        };
        let token = rayon::CancelToken::new();
        token.cancel();
        let err = job.run(&quiet(&token, &dir)).unwrap_err();
        assert_eq!(err, JobError::Interrupted(rayon::CancelReason::Cancelled));
        // The journal holds nothing: the point re-executes on resume.
        let fresh = rayon::CancelToken::new();
        let r = job.run(&quiet(&fresh, &dir)).expect("resume completes");
        assert_eq!((r.done, r.resumed), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_job_journals_cases_and_resumes_by_key() {
        let dir = tmpdir("chaos");
        let log = dir.join("soak.jsonl");
        let job = SimJob::Chaos {
            seed: 7,
            cases: 2,
            pool: GenPool::Smoke,
            log: log.clone(),
        };
        let token = rayon::CancelToken::new();
        let r = job.run(&quiet(&token, &dir)).expect("chaos completes");
        assert_eq!((r.done, r.total, r.resumed), (2, 2, 0));
        let rows = Checkpoint::open(&log).unwrap().rows();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.contains_key("status"), "{row:?}");
        }
        // A second run adopts both rows from the journal.
        let r = job.run(&quiet(&token, &dir)).expect("chaos resumes");
        assert_eq!((r.done, r.resumed), (2, 2));
        // A wider run resumes the prefix: the generator is pure in the seed.
        let wider = SimJob::Chaos {
            seed: 7,
            cases: 3,
            pool: GenPool::Smoke,
            log: log.clone(),
        };
        let r = wider.run(&quiet(&token, &dir)).expect("wider run");
        assert_eq!((r.done, r.resumed), (3, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_chaos_job_resumes_where_it_stopped() {
        let dir = tmpdir("chaos_cancel");
        let log = dir.join("soak.jsonl");
        let job = SimJob::Chaos {
            seed: 3,
            cases: 2,
            pool: GenPool::Smoke,
            log: log.clone(),
        };
        let token = rayon::CancelToken::new();
        token.cancel();
        let err = job.run(&quiet(&token, &dir)).unwrap_err();
        assert!(matches!(err, JobError::Interrupted(_)));
        let fresh = rayon::CancelToken::new();
        let r = job.run(&quiet(&fresh, &dir)).expect("resume");
        assert_eq!(r.done, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_job_round_trips_a_recorded_failure() {
        let dir = tmpdir("replay");
        // Manufacture a deterministic failing case, harvest its repro via a
        // chaos-style run, then replay it through the job abstraction.
        let case = chaos::wedged_adaptive_case();
        let f = match chaos::run_case(&case, &dir) {
            CaseOutcome::Fail(f) => f,
            other => panic!("expected failure, got {other:?}"),
        };
        let repro = dir.join("repro.jsonl");
        std::fs::write(&repro, format!("{}\n", chaos::repro_line(&case, &f))).unwrap();
        let token = rayon::CancelToken::new();
        let job = SimJob::Replay {
            repro: repro.clone(),
        };
        let r = job.run(&quiet(&token, &dir)).expect("replay verifies");
        assert_eq!((r.done, r.total), (1, 1));
        assert!(!r.summary.is_empty());
        // A corrupted repro is a deterministic failure, not an interrupt.
        std::fs::write(&repro, "not json\n").unwrap();
        let err = job.run(&quiet(&token, &dir)).unwrap_err();
        assert!(matches!(err, JobError::Failed(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
