//! `noc-chaos`: seeded chaos soak harness with differential oracles and
//! delta-debugging minimization.
//!
//! The engine (PRs 3–5) can kill and heal links mid-run; this module
//! *searches* the scheme × pattern × rate × mesh × schedule space for the
//! wedges nobody hand-seeded. A [`CaseGen`] draws random [`ChaosCase`]s from
//! one seed, [`precheck`] applies the same certification gate as the fault
//! sweep (per *epoch*, via [`noc_verify::certify_schedule`]), and
//! [`run_case`] executes each survivor under four differential oracles:
//!
//! * **conservation** — with e2e recovery armed, every injected packet must
//!   eject; without it, the flits that never arrive must equal the engine's
//!   `chaos_purged_flits` accounting exactly (loss is allowed, unaccounted
//!   loss is not);
//! * **exactly-once** — no packet id is delivered twice;
//! * **watchdog-clean** — a sustained stall escalates to a black-box dump
//!   (`blackbox_<key>.json`, schema `noc-blackbox-v1`) instead of a hang;
//! * **determinism** — a passing case is replayed and both runs must produce
//!   the same delivery digest (the engine is bit-reproducible per seed; the
//!   CI smoke additionally diffs whole-process reruns).
//!
//! A failing case is shrunk by [`minimize`] — greedy event removal, then
//! rate, cycle, mesh and VC reduction, to a fixed point that still fails the
//! *same* oracle — and written as a one-line replayable JSON repro next to
//! its black-box dump. [`replay`] re-runs a repro and compares the failure
//! signature byte-for-byte.

use crate::jsonio::{self, JsonObj};
use crate::runner::Scheme;
use noc_sim::stats::DeliveredPacket;
use noc_sim::workload::Workload;
use noc_sim::{watchdog, Sim, Stats};
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::fault::fnv1a;
use noc_types::{
    BaseRouting, Cycle, Direction, FaultAction, FaultConfig, FaultEvent, FaultSchedule, NetConfig,
    NodeId, Packet, RecoveryConfig, SchemeKind,
};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Cycles between watchdog samples while a case runs (same cadence as the
/// fault sweep).
const WATCHDOG_PERIOD: u64 = 256;

/// Repro/row schema tag, bumped on any field change.
const REPRO_SCHEMA: &str = "noc-chaos-repro-v1";

// ---------------------------------------------------------------------------
// Case description + flat-JSON round trip
// ---------------------------------------------------------------------------

/// One point of the chaos search space. Plain data: everything needed to
/// replay the run bit-for-bit is in here (the engine adds no hidden state).
#[derive(Clone, Debug)]
pub struct ChaosCase {
    pub scheme: Scheme,
    pub k: u8,
    pub vcs: u8,
    pub pattern: TrafficPattern,
    /// Offered load in packets per node per cycle.
    pub rate: f64,
    /// Injection window; the run then drains with sources silenced.
    pub cycles: u64,
    pub seed: u64,
    pub schedule: FaultSchedule,
    pub recovery: RecoveryConfig,
}

impl ChaosCase {
    /// The network configuration this case simulates. Warmup is zeroed so
    /// the harness-side ledger covers every packet of the run.
    pub fn config(&self) -> NetConfig {
        let mut cfg = self
            .scheme
            .configure(NetConfig::synth(self.k, self.vcs))
            .with_seed(self.seed)
            .with_fault(FaultConfig::default().with_schedule(self.schedule.clone()))
            .with_recovery(self.recovery.clone());
        cfg.warmup = 0;
        cfg
    }

    /// Stable case key: FNV-1a over every knob, via the config digest (which
    /// folds in the schedule and recovery canonicals).
    pub fn key(&self) -> String {
        let s = format!(
            "{}|{}|{:016x}|{}|{}|{:016x}",
            self.scheme.label(),
            self.pattern.label(),
            self.rate.to_bits(),
            self.cycles,
            self.seed,
            self.config().digest(),
        );
        format!("{:016x}", fnv1a(s.as_bytes()))
    }

    /// Appends the case's own fields to a row builder (shared by log rows
    /// and repro files, so both render identically).
    fn fields(&self, obj: JsonObj) -> JsonObj {
        obj.str_field("key", &self.key())
            .str_field("scheme", &self.scheme.label())
            .u64_field("k", u64::from(self.k))
            .u64_field("vcs", u64::from(self.vcs))
            .str_field("pattern", self.pattern.label())
            .f64_field("rate", self.rate, 6)
            .u64_field("cycles", self.cycles)
            .u64_field("seed", self.seed)
            .str_field("events", &self.schedule.canonical())
            .str_field("recovery", &self.recovery.canonical())
    }

    /// Parses a case back out of a flat row (a repro file or a log row).
    pub fn from_row(row: &std::collections::BTreeMap<String, String>) -> Result<ChaosCase, String> {
        let get = |k: &str| -> Result<&String, String> {
            row.get(k)
                .ok_or_else(|| format!("repro missing field '{k}'"))
        };
        let int = |k: &str| -> Result<u64, String> {
            get(k)?.parse().map_err(|e| format!("field '{k}': {e}"))
        };
        Ok(ChaosCase {
            scheme: scheme_from_label(get("scheme")?)?,
            k: u8::try_from(int("k")?).map_err(|e| format!("field 'k': {e}"))?,
            vcs: u8::try_from(int("vcs")?).map_err(|e| format!("field 'vcs': {e}"))?,
            pattern: pattern_from_label(get("pattern")?)?,
            rate: get("rate")?
                .parse()
                .map_err(|e| format!("field 'rate': {e}"))?,
            cycles: int("cycles")?,
            seed: int("seed")?,
            schedule: parse_events(get("events")?)?,
            recovery: parse_recovery(get("recovery")?)?,
        })
    }
}

/// Inverse of [`Scheme::label`] for the labels the generator and the
/// acceptance cases use.
fn scheme_from_label(label: &str) -> Result<Scheme, String> {
    Ok(match label {
        "XY" => Scheme::Xy,
        "WF" => Scheme::WestFirst,
        "ADAPT" => Scheme::Adaptive,
        "TFC" => Scheme::Tfc,
        "EscVC" => Scheme::escape(),
        "SPIN" => Scheme::Spin,
        "SWAP" => Scheme::Swap,
        "DRAIN" => Scheme::Drain,
        "SEEC" => Scheme::seec(),
        "mSEEC" => Scheme::mseec(),
        "SEEC-XY" => Scheme::Seec {
            routing: BaseRouting::Xy,
        },
        other => return Err(format!("unknown scheme label '{other}'")),
    })
}

/// Inverse of [`TrafficPattern::label`].
fn pattern_from_label(label: &str) -> Result<TrafficPattern, String> {
    Ok(match label {
        "uniform_random" => TrafficPattern::UniformRandom,
        "transpose" => TrafficPattern::Transpose,
        "bit_rotation" => TrafficPattern::BitRotation,
        "shuffle" => TrafficPattern::Shuffle,
        "bit_complement" => TrafficPattern::BitComplement,
        "tornado" => TrafficPattern::Tornado,
        "neighbor" => TrafficPattern::Neighbor,
        "hotspot" => TrafficPattern::Hotspot,
        other => return Err(format!("unknown pattern label '{other}'")),
    })
}

/// Inverse of [`RecoveryConfig::canonical`] (`re=..;st=..;et=..;er=..`).
fn parse_recovery(canon: &str) -> Result<RecoveryConfig, String> {
    let mut rc = RecoveryConfig::default();
    for part in canon.split(';').filter(|p| !p.is_empty()) {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("bad recovery field '{part}'"))?;
        let n: u64 = val
            .parse()
            .map_err(|e| format!("recovery field '{part}': {e}"))?;
        match key {
            "re" => rc.enabled = n != 0,
            "st" => rc.stuck_threshold = n,
            "et" => rc.e2e_timeout = n,
            "er" => {
                rc.e2e_max_retries =
                    u32::try_from(n).map_err(|e| format!("recovery field '{part}': {e}"))?;
            }
            other => return Err(format!("unknown recovery field '{other}'")),
        }
    }
    Ok(rc)
}

/// Inverse of [`FaultSchedule::canonical`] (`at:code:node[:dir],` repeated).
fn parse_events(canon: &str) -> Result<FaultSchedule, String> {
    let mut events = Vec::new();
    for tok in canon.split(',').filter(|t| !t.is_empty()) {
        let parts: Vec<&str> = tok.split(':').collect();
        let err = |what: &str| format!("bad schedule event '{tok}': {what}");
        if parts.len() < 3 {
            return Err(err("too few fields"));
        }
        let at: Cycle = parts[0].parse().map_err(|_| err("bad cycle"))?;
        let node = NodeId(parts[2].parse().map_err(|_| err("bad node"))?);
        let dir = || -> Result<Direction, String> {
            let idx: usize = parts
                .get(3)
                .ok_or_else(|| err("missing direction"))?
                .parse()
                .map_err(|_| err("bad direction"))?;
            if idx >= 4 {
                return Err(err("direction out of range"));
            }
            Ok(Direction::from_index(idx))
        };
        let action = match parts[1] {
            "kl" => FaultAction::KillLink(node, dir()?),
            "hl" => FaultAction::HealLink(node, dir()?),
            "kr" => FaultAction::KillRouter(node),
            "hr" => FaultAction::HealRouter(node),
            other => return Err(err(&format!("unknown action '{other}'"))),
        };
        events.push(FaultEvent { at, action });
    }
    Ok(FaultSchedule::new(events))
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Which oracle a case failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// Flits vanished beyond the engine's own purge accounting (or at all,
    /// with e2e recovery armed).
    Lost,
    /// A packet id was delivered more than once.
    Duplicated,
    /// The watchdog saw no progress for its threshold; black box captured.
    Wedged,
    /// The network failed to drain after sources went silent.
    DrainStall,
    /// End-to-end recovery gave up on a packet (`e2e_abandoned > 0`).
    Abandoned,
    /// Two runs of the same case produced different delivery digests.
    NonDeterministic,
    /// The simulator panicked (assertion, invariant, bug).
    Panicked,
}

impl FailureKind {
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Lost => "lost",
            FailureKind::Duplicated => "duplicated",
            FailureKind::Wedged => "wedged",
            FailureKind::DrainStall => "drain-stall",
            FailureKind::Abandoned => "abandoned",
            FailureKind::NonDeterministic => "non-deterministic",
            FailureKind::Panicked => "panicked",
        }
    }
}

/// A failed oracle, with a *deterministic* detail string (no paths, no
/// timestamps — the detail is part of the replay signature).
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub detail: String,
    /// Black-box dump, when the watchdog escalated.
    pub blackbox: Option<PathBuf>,
}

/// A passing run's evidence.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Chained FNV digest over the delivery stream and the final counters.
    pub digest: u64,
    pub delivered: u64,
    pub purged_flits: u64,
    /// Short re-certification verdict per schedule event, in timeline order
    /// (also written into `Stats::epochs[..].recert`).
    pub recert: Vec<String>,
    /// Final statistics with the recert column filled in.
    pub stats: Box<Stats>,
}

/// Outcome of [`run_case`].
#[derive(Debug)]
pub enum CaseOutcome {
    Pass(PassReport),
    /// The case was loaded past its saturation point: the drain kept making
    /// delivery progress but the source backlog was not shrinking, so the
    /// oracles cannot settle inside the budget. Counted as a skip, not a
    /// failure — nothing is wrong except the offered load.
    Saturated(String),
    Fail(Failure),
}

/// Internal result of a single [`run_once`] execution.
enum RunStop {
    Saturated(String),
    Fail(Failure),
}

impl From<Failure> for RunStop {
    fn from(f: Failure) -> Self {
        RunStop::Fail(f)
    }
}

/// Harness-side ledger: every injected id (with its flit length) and every
/// delivery, hashed in arrival order.
#[derive(Default)]
struct Tally {
    injected: HashMap<u64, u8>,
    delivered: HashMap<u64, u32>,
    deliveries: u64,
    digest: u64,
}

impl Tally {
    /// Ids injected but never delivered, with the flit total they carried.
    fn lost(&self) -> (u64, u64) {
        let mut ids = 0u64;
        let mut flits = 0u64;
        for (id, len) in &self.injected {
            if !self.delivered.contains_key(id) {
                ids += 1;
                flits += u64::from(*len);
            }
        }
        (ids, flits)
    }

    fn duplicated(&self) -> u64 {
        self.delivered.values().filter(|&&n| n > 1).count() as u64
    }

    fn all_delivered(&self) -> bool {
        self.delivered.len() == self.injected.len()
    }
}

fn chain(h: u64, bytes: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + bytes.len());
    buf.extend_from_slice(&h.to_le_bytes());
    buf.extend_from_slice(bytes);
    fnv1a(&buf)
}

/// Open-loop source wrapper: delegates to [`SyntheticWorkload`] until
/// `stop_at`, then goes silent so the network can drain; records every
/// injection and delivery in the shared [`Tally`].
struct Driver {
    inner: SyntheticWorkload,
    stop_at: Cycle,
    tally: Rc<RefCell<Tally>>,
}

impl Workload for Driver {
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet)) {
        if cycle >= self.stop_at {
            return;
        }
        let tally = &self.tally;
        let mut hook = |n: NodeId, p: Packet| {
            tally.borrow_mut().injected.insert(p.id.0, p.len_flits);
            inject(n, p);
        };
        self.inner.generate(cycle, &mut hook);
    }

    fn deliver(&mut self, _cycle: Cycle, p: &DeliveredPacket) -> bool {
        let mut t = self.tally.borrow_mut();
        *t.delivered.entry(p.id.0).or_insert(0) += 1;
        t.deliveries += 1;
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&p.id.0.to_le_bytes());
        bytes[8..].copy_from_slice(&p.eject.to_le_bytes());
        t.digest = chain(t.digest, &bytes);
        true
    }
}

/// True when nothing is queued, flying, or half-injected anywhere.
fn network_idle(net: &noc_sim::network::Network) -> bool {
    net.flits_in_network() == 0
        && net.nics.iter().map(noc_sim::Nic::backlog).sum::<usize>() == 0
        && net
            .nics
            .iter()
            .flat_map(|n| n.ejection.iter())
            .map(|e| e.buf.len())
            .sum::<usize>()
            == 0
        && net.inbox_nic.iter().map(noc_sim::Inbox::len).sum::<usize>() == 0
        && net.nics.iter().all(|n| n.inj_active.is_none())
}

/// One full simulation of `case`: injection window, drain window, oracles.
/// Returns the pass evidence or the first oracle violation. May panic on a
/// simulator bug — [`run_case`] isolates that into [`FailureKind::Panicked`].
fn run_once(case: &ChaosCase, dump_dir: &Path) -> Result<PassReport, RunStop> {
    let cfg = case.config();
    let tally = Rc::new(RefCell::new(Tally::default()));
    let wl = Driver {
        inner: SyntheticWorkload::new(
            case.pattern,
            case.rate,
            cfg.cols,
            cfg.rows,
            cfg.warmup,
            case.seed,
        ),
        stop_at: case.cycles,
        tally: tally.clone(),
    };
    let mech = case.scheme.mechanism(&cfg);
    let mut sim = Sim::new(cfg.clone(), Box::new(wl), mech);
    sim.net.enable_flight_recorder(64);

    let check_wedge = |sim: &mut Sim| -> Result<(), Failure> {
        if !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
            return Ok(());
        }
        let bb =
            watchdog::BlackBox::capture(&sim.net, &case.scheme.label(), &sim.mech.debug_state());
        let path = dump_dir.join(format!("blackbox_{}.json", case.key()));
        let blackbox = bb.write(&path).ok().map(|()| path);
        Err(Failure {
            kind: FailureKind::Wedged,
            detail: format!(
                "no progress for {} cycles at cycle {}",
                watchdog::DEFAULT_STUCK_THRESHOLD,
                sim.net.cycle
            ),
            blackbox,
        })
    };

    // Injection window.
    let mut remaining = case.cycles;
    while remaining > 0 {
        let slice = WATCHDOG_PERIOD.min(remaining);
        sim.run(slice);
        remaining -= slice;
        check_wedge(&mut sim)?;
    }

    // Drain window: sources silent. The budget is deliberately generous —
    // a case injected past its saturation point legitimately needs many
    // thousands of cycles to clear its NIC backlogs, and the wedge check
    // already catches genuine no-progress stalls long before the cap. With
    // e2e armed, an abandoned packet ends the wait immediately (the network
    // goes idle but `all_delivered` would never come true).
    let e2e_armed = case.recovery.enabled && case.recovery.e2e_timeout > 0;
    let drain_budget = 200_000u64.max(8 * case.recovery.e2e_timeout);
    // Saturation probe: if well into the drain the network is still
    // delivering but the source backlog is not shrinking, the case was
    // loaded past its collapse point and would legitimately take millions
    // of cycles to clear (recovery drains are serialized). That is a skip,
    // not a bug — `DrainStall` is reserved for genuine no-progress.
    const SATURATION_PROBE: u64 = 60_000;
    let nic_backlog = |net: &noc_sim::network::Network| -> u64 {
        net.nics.iter().map(|n| n.backlog() as u64).sum()
    };
    let backlog0 = nic_backlog(&sim.net);
    let delivered0 = tally.borrow().deliveries;
    let mut spent = 0u64;
    let mut settled = false;
    while spent < drain_budget {
        sim.run(WATCHDOG_PERIOD);
        spent += WATCHDOG_PERIOD;
        check_wedge(&mut sim)?;
        if e2e_armed && sim.net.stats.e2e_abandoned > 0 {
            break;
        }
        let done = if e2e_armed {
            tally.borrow().all_delivered()
        } else {
            network_idle(&sim.net)
        };
        if done {
            // One grace slice so late duplicates would still be observed.
            sim.run(WATCHDOG_PERIOD);
            check_wedge(&mut sim)?;
            settled = true;
            break;
        }
        if spent >= SATURATION_PROBE
            && tally.borrow().deliveries > delivered0
            && nic_backlog(&sim.net) >= backlog0
        {
            return Err(RunStop::Saturated(format!(
                "source backlog not shrinking after {spent} drain cycles \
                 ({backlog0} packets queued when sources stopped)"
            )));
        }
    }
    let drain_progressing = tally.borrow().deliveries > delivered0;

    let mut stats = Box::new(sim.finish().clone());

    // Fill the epoch trace's recert column from the static per-epoch
    // certifier: engine epochs and schedule certifications share the
    // `cycle:code:node[:dir]` action key.
    let mut recert = Vec::new();
    if let Ok(certs) = noc_verify::certify_schedule(&cfg) {
        for c in &certs {
            recert.push(c.short_verdict().to_string());
        }
        for ep in &mut stats.epochs {
            if let Some(c) = certs.iter().find(|c| c.action == ep.action) {
                ep.recert = Some(c.short_verdict().to_string());
            }
        }
    }

    let t = tally.borrow();
    let (lost_ids, lost_flits) = t.lost();
    let dups = t.duplicated();
    let fail = |kind: FailureKind, detail: String| {
        Err(RunStop::Fail(Failure {
            kind,
            detail,
            blackbox: None,
        }))
    };

    if dups > 0 {
        return fail(
            FailureKind::Duplicated,
            format!("{dups} packet ids delivered more than once"),
        );
    }
    if e2e_armed && stats.e2e_abandoned > 0 {
        return fail(
            FailureKind::Abandoned,
            format!("e2e recovery abandoned {} packets", stats.e2e_abandoned),
        );
    }
    // An unfinished drain pre-empts the loss oracles: packets still queued
    // at the budget cap are stranded, not lost, and claiming "lost" would
    // misdirect the debugging. If deliveries were still advancing at the
    // cap the case is merely past saturation — skip it instead.
    if !settled {
        if drain_progressing {
            return Err(RunStop::Saturated(format!(
                "still delivering at the {drain_budget}-cycle drain cap \
                 (load past saturation, backlog clearing too slowly)"
            )));
        }
        return fail(
            FailureKind::DrainStall,
            format!("network failed to drain within {drain_budget} cycles after sources stopped"),
        );
    }
    if e2e_armed {
        if lost_ids > 0 {
            return fail(
                FailureKind::Lost,
                format!("{lost_ids} packets ({lost_flits} flits) never delivered with e2e armed"),
            );
        }
    } else if lost_flits != stats.chaos_purged_flits {
        return fail(
            FailureKind::Lost,
            format!(
                "{lost_flits} flits missing but chaos purge accounts for {} \
                 ({lost_ids} packets lost)",
                stats.chaos_purged_flits
            ),
        );
    }

    let mut digest = t.digest;
    for counter in [
        t.deliveries,
        stats.chaos_epochs,
        stats.chaos_purged_flits,
        stats.e2e_retransmits,
        stats.e2e_duplicates_dropped,
        stats.ejected_flits_all,
    ] {
        digest = chain(digest, &counter.to_le_bytes());
    }
    Ok(PassReport {
        digest,
        delivered: t.deliveries,
        purged_flits: stats.chaos_purged_flits,
        recert,
        stats,
    })
}

/// First line of a panic payload, for deterministic failure details.
fn first_line(msg: &str) -> String {
    msg.lines().next().unwrap_or("").to_string()
}

/// Executes `case` under panic isolation and the determinism oracle: a
/// passing run is executed a second time and both delivery digests must
/// match. The black-box dump (if any) lands in `dump_dir`.
pub fn run_case(case: &ChaosCase, dump_dir: &Path) -> CaseOutcome {
    let attempt = || rayon::catch_panic(|| run_once(case, dump_dir));
    let first = match attempt() {
        Ok(r) => r,
        Err(msg) => {
            let dump = dump_dir.join(format!("blackbox_{}.json", case.key()));
            return CaseOutcome::Fail(Failure {
                kind: FailureKind::Panicked,
                detail: first_line(&msg),
                blackbox: dump.is_file().then_some(dump),
            });
        }
    };
    let report = match first {
        Ok(rep) => rep,
        // A saturated case is skipped without the determinism double-run:
        // nothing about it is suspect, it just cannot settle in budget.
        Err(RunStop::Saturated(why)) => return CaseOutcome::Saturated(why),
        Err(RunStop::Fail(f)) => return CaseOutcome::Fail(f),
    };
    match attempt() {
        Ok(Ok(rep2)) if rep2.digest == report.digest => CaseOutcome::Pass(report),
        Ok(Ok(rep2)) => CaseOutcome::Fail(Failure {
            kind: FailureKind::NonDeterministic,
            detail: format!(
                "delivery digests diverge across identical runs: {:016x} vs {:016x}",
                report.digest, rep2.digest
            ),
            blackbox: None,
        }),
        Ok(Err(RunStop::Saturated(why))) => CaseOutcome::Fail(Failure {
            kind: FailureKind::NonDeterministic,
            detail: format!("first run passed, identical second run saturated: {why}"),
            blackbox: None,
        }),
        Ok(Err(RunStop::Fail(f))) => CaseOutcome::Fail(Failure {
            kind: FailureKind::NonDeterministic,
            detail: format!(
                "first run passed, identical second run failed: {}",
                f.detail
            ),
            blackbox: f.blackbox,
        }),
        Err(msg) => CaseOutcome::Fail(Failure {
            kind: FailureKind::NonDeterministic,
            detail: format!(
                "first run passed, identical second run panicked: {}",
                first_line(&msg)
            ),
            blackbox: None,
        }),
    }
}

// ---------------------------------------------------------------------------
// Certification gate (generator-side)
// ---------------------------------------------------------------------------

/// The same refusal policy as the fault sweep, applied per epoch: schemes
/// whose deadlock freedom is a static property (XY/WF/TFC/EscapeVc) must
/// keep a certificate through *every* epoch of the schedule unless a
/// certified recovery channel is armed; unroutable epochs need recovery
/// (the purge + e2e path) to be survivable. Returns the skip reason.
pub fn precheck(case: &ChaosCase) -> Result<(), String> {
    let cfg = case.config();
    let static_kind = matches!(
        case.scheme.kind(),
        SchemeKind::None | SchemeKind::EscapeVc | SchemeKind::Tfc
    );
    let armed = case.recovery.enabled;
    if static_kind && !armed {
        let report = noc_verify::certify(&cfg);
        if !report.certified() {
            return Err(format!(
                "uncertified: {} holds no healthy-state certificate and recovery is unarmed",
                case.scheme.label()
            ));
        }
    }
    let epochs = noc_verify::certify_schedule(&cfg)?;
    for e in &epochs {
        if !e.report.verdict.routable() && !armed {
            return Err(format!(
                "unroutable epoch {} with recovery unarmed",
                e.action
            ));
        }
        if static_kind && !armed && !e.report.verdict.certified() {
            return Err(format!(
                "uncertified epoch {} ({}) with recovery unarmed",
                e.action,
                e.short_verdict()
            ));
        }
    }
    if case.recovery.any() {
        let rec = noc_verify::certify_recovery(&cfg);
        if !rec.certified() {
            return Err("recovery channel itself failed certification".to_string());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Seeded case generator
// ---------------------------------------------------------------------------

/// Which slice of the design space to draw from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GenPool {
    /// Mechanism-free schemes, link flaps only: the every-push smoke set.
    Smoke,
    /// Adds SEEC/mSEEC mechanisms and router flaps: the nightly soak set.
    Full,
}

/// Deterministic random case stream: same seed, same cases, forever.
pub struct CaseGen {
    rng: SmallRng,
    pool: GenPool,
}

impl CaseGen {
    pub fn new(seed: u64, pool: GenPool) -> CaseGen {
        CaseGen {
            rng: SmallRng::seed_from_u64(seed),
            pool,
        }
    }

    /// Draws the next structurally-valid case (schedule validated against
    /// the mesh; certification gating is [`precheck`]'s separate job).
    pub fn next_case(&mut self) -> ChaosCase {
        loop {
            let case = self.draw();
            let cfg = case.config();
            if cfg.fault.validate(cfg.cols, cfg.rows).is_ok() {
                return case;
            }
        }
    }

    /// A random physical link named from a node with a valid neighbour in
    /// that direction.
    fn random_link(&mut self, k: u8) -> (NodeId, Direction) {
        let k16 = u16::from(k);
        if self.rng.gen_bool(0.5) {
            let x = self.rng.gen_range(0..k16 - 1);
            let y = self.rng.gen_range(0..k16);
            (NodeId(y * k16 + x), Direction::East)
        } else {
            let x = self.rng.gen_range(0..k16);
            let y = self.rng.gen_range(0..k16 - 1);
            (NodeId(y * k16 + x), Direction::South)
        }
    }

    fn draw(&mut self) -> ChaosCase {
        let schemes: &[Scheme] = match self.pool {
            GenPool::Smoke => &[
                Scheme::Xy,
                Scheme::WestFirst,
                Scheme::EscapeVc {
                    normal: BaseRouting::AdaptiveMinimal,
                },
                Scheme::Adaptive,
            ],
            GenPool::Full => &[
                Scheme::Xy,
                Scheme::WestFirst,
                Scheme::EscapeVc {
                    normal: BaseRouting::AdaptiveMinimal,
                },
                Scheme::Adaptive,
                Scheme::Seec {
                    routing: BaseRouting::AdaptiveMinimal,
                },
                Scheme::MSeec {
                    routing: BaseRouting::AdaptiveMinimal,
                },
            ],
        };
        let patterns = [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::Tornado,
            TrafficPattern::Shuffle,
        ];
        let scheme = schemes[self.rng.gen_range(0..schemes.len())];
        let pattern = patterns[self.rng.gen_range(0..patterns.len())];
        // Smoke keeps the mesh at 4×4 so the per-push CI run stays fast.
        let ks: &[u8] = if self.pool == GenPool::Smoke {
            &[4, 4]
        } else {
            &[4, 4, 6, 8]
        };
        let k = ks[self.rng.gen_range(0..ks.len())];
        let vcs = if self.rng.gen_bool(0.5) { 2 } else { 4 };
        // Quantized so the 6-decimal row rendering round-trips exactly.
        let rate = f64::from(self.rng.gen_range(20u32..101)) / 1000.0;
        let cycles = [4_000u64, 6_000, 8_000][self.rng.gen_range(0..3usize)];
        let seed = self.rng.next_u64();

        // Every case ends fully healed: each disturbance is a kill/heal pair
        // finishing well before the drain window, on distinct hardware.
        let disturbances = 1 + usize::from(self.rng.gen_bool(0.4));
        let mut schedule = FaultSchedule::none();
        let mut used: Vec<(NodeId, Direction)> = Vec::new();
        for _ in 0..disturbances {
            let kill_at: u64 = self.rng.gen_range(200..cycles / 2);
            let down: u64 = self.rng.gen_range(200..1_200);
            let heal_at = (kill_at + down).min(cycles - 1_000);
            if heal_at <= kill_at {
                continue;
            }
            if self.pool == GenPool::Full && self.rng.gen_bool(0.2) && schedule.is_empty() {
                // Router flap, alone (link events under a dead router are
                // invalid, so routers never share a schedule here).
                let node = NodeId(self.rng.gen_range(0..u16::from(k) * u16::from(k)));
                schedule = FaultSchedule::new(vec![
                    FaultEvent {
                        at: kill_at,
                        action: FaultAction::KillRouter(node),
                    },
                    FaultEvent {
                        at: heal_at,
                        action: FaultAction::HealRouter(node),
                    },
                ]);
                break;
            }
            let (node, dir) = self.random_link(k);
            if used.contains(&(node, dir)) {
                continue;
            }
            used.push((node, dir));
            schedule = schedule.merged(FaultSchedule::link_flap(node, dir, kill_at, heal_at));
        }

        // Recovery is always armed in generated cases: drain + generous e2e
        // turns every survivable schedule into an exactly-once obligation the
        // oracles can check exactly. (Unarmed accounting is covered by the
        // engine's own test suite and by hand-built cases.)
        let recovery = RecoveryConfig::drain().with_e2e(600, 50);

        ChaosCase {
            scheme,
            k,
            vcs,
            pattern,
            rate,
            cycles,
            seed,
            schedule,
            recovery,
        }
    }
}

// ---------------------------------------------------------------------------
// Delta-debugging minimization
// ---------------------------------------------------------------------------

/// Shrinks a failing case to a fixed point that still fails the *same*
/// oracle: greedy single-event removal (schedule validity pruned first),
/// then rate halving, cycle halving, mesh shrink to 4×4, and VC halving.
/// `max_runs` caps the number of candidate executions.
pub fn minimize(
    case: &ChaosCase,
    kind: FailureKind,
    dump_dir: &Path,
    max_runs: usize,
) -> ChaosCase {
    fn still_fails(
        cand: &ChaosCase,
        kind: FailureKind,
        dump_dir: &Path,
        runs: &mut usize,
        max_runs: usize,
    ) -> bool {
        if *runs >= max_runs {
            return false;
        }
        let cfg = cand.config();
        if cfg.fault.validate(cfg.cols, cfg.rows).is_err() {
            return false;
        }
        *runs += 1;
        matches!(run_case(cand, dump_dir), CaseOutcome::Fail(f) if f.kind == kind)
    }

    let mut best = case.clone();
    let mut runs = 0usize;
    loop {
        let mut improved = false;

        // 1. Drop schedule events one at a time, scanning from the back: in
        // a kill/heal chain only tail removals keep the state machine valid
        // (anything else heals a live link or kills a dead one), so the
        // backward scan peels the whole tail in a single pass. Invalid
        // removals are rejected by validation without costing a run.
        let mut i = best.schedule.events.len();
        while i > 0 {
            i -= 1;
            let mut cand = best.clone();
            cand.schedule.events.remove(i);
            if still_fails(&cand, kind, dump_dir, &mut runs, max_runs) {
                best = cand;
                improved = true;
            }
        }

        // 2. Halve the offered load to its own fixed point, quantized to the
        // row rendering's 6 decimals so the repro round-trips exactly.
        while best.rate > 0.02 {
            let micro = ((best.rate * 1e6).round() as u64) / 2;
            let mut cand = best.clone();
            cand.rate = micro as f64 / 1e6;
            if still_fails(&cand, kind, dump_dir, &mut runs, max_runs) {
                best = cand;
                improved = true;
            } else {
                break;
            }
        }

        // 3. Halve the injection window to its own fixed point (keeping
        // every event inside it with room for the watchdog to trip).
        loop {
            let floor = best.schedule.last_event_cycle().unwrap_or(0)
                + 2 * watchdog::DEFAULT_STUCK_THRESHOLD;
            if best.cycles / 2 < floor.max(2_048) {
                break;
            }
            let mut cand = best.clone();
            cand.cycles /= 2;
            if still_fails(&cand, kind, dump_dir, &mut runs, max_runs) {
                best = cand;
                improved = true;
            } else {
                break;
            }
        }

        // 4. Shrink the mesh (events naming off-mesh nodes fail validation).
        if best.k > 4 {
            let mut cand = best.clone();
            cand.k = 4;
            if still_fails(&cand, kind, dump_dir, &mut runs, max_runs) {
                best = cand;
                improved = true;
            }
        }

        // 5. Halve the VC count (Duato schemes need 2+ VCs to even build).
        let vc_floor = if case.scheme.kind() == SchemeKind::EscapeVc {
            2
        } else {
            1
        };
        if best.vcs / 2 >= vc_floor {
            let mut cand = best.clone();
            cand.vcs /= 2;
            if still_fails(&cand, kind, dump_dir, &mut runs, max_runs) {
                best = cand;
                improved = true;
            }
        }

        if !improved || runs >= max_runs {
            return best;
        }
    }
}

// ---------------------------------------------------------------------------
// Repro files + replay
// ---------------------------------------------------------------------------

/// Renders the deterministic failure signature of (case, failure): the repro
/// row without the digest field. Byte-identical across replays by
/// construction — every field is either case data or a deterministic detail.
fn failure_signature(case: &ChaosCase, f: &Failure) -> String {
    case.fields(JsonObj::new().str_field("schema", REPRO_SCHEMA))
        .str_field("expect_status", f.kind.label())
        .str_field("expect_detail", &f.detail)
        .finish()
}

/// Renders the full one-line repro document: signature fields plus the FNV
/// digest over the signature itself.
pub fn repro_line(case: &ChaosCase, f: &Failure) -> String {
    let digest = fnv1a(failure_signature(case, f).as_bytes());
    case.fields(JsonObj::new().str_field("schema", REPRO_SCHEMA))
        .str_field("expect_status", f.kind.label())
        .str_field("expect_detail", &f.detail)
        .str_field("expect_digest", &format!("{digest:016x}"))
        .finish()
}

/// Re-runs a repro file and checks the failure reproduces **byte-identically**:
/// the file's signature must hash to its recorded digest (integrity), and the
/// fresh run's signature must equal the recorded one exactly.
pub fn replay(path: &Path, dump_dir: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let line = text
        .lines()
        .next()
        .ok_or_else(|| format!("{} is empty", path.display()))?;
    // Accept both sealed (CRC-trailered) and plain repro lines; a sealed
    // line whose CRC fails is corruption, reported as such rather than as
    // a parse error.
    let line = match noc_store::open_line(line) {
        noc_store::LineCheck::Sealed(payload) => payload,
        noc_store::LineCheck::Legacy(l) => l,
        noc_store::LineCheck::Corrupt => {
            return Err(format!(
                "{} failed its CRC check (torn or corrupt record)",
                path.display()
            ))
        }
    };
    let row = jsonio::parse_flat(line)
        .ok_or_else(|| format!("{} is not a flat repro row", path.display()))?;
    let case = ChaosCase::from_row(&row)?;
    let want_status = row
        .get("expect_status")
        .ok_or("repro missing expect_status")?;
    let want_detail = row
        .get("expect_detail")
        .ok_or("repro missing expect_detail")?;
    let want_digest = row
        .get("expect_digest")
        .ok_or("repro missing expect_digest")?;

    // Integrity: the recorded digest must match the recorded fields.
    let recorded = failure_signature(
        &case,
        &Failure {
            kind: kind_from_label(want_status)?,
            detail: want_detail.clone(),
            blackbox: None,
        },
    );
    let recorded_digest = format!("{:016x}", fnv1a(recorded.as_bytes()));
    if &recorded_digest != want_digest {
        return Err(format!(
            "repro file is internally inconsistent: recorded digest {want_digest}, \
             fields hash to {recorded_digest} (file edited?)"
        ));
    }

    match run_case(&case, dump_dir) {
        CaseOutcome::Pass(_) => Err(format!(
            "case no longer fails (expected {want_status}: {want_detail})"
        )),
        CaseOutcome::Saturated(why) => Err(format!(
            "case saturated instead of failing (expected {want_status}: {want_detail}) — {why}"
        )),
        CaseOutcome::Fail(f) => {
            let got = failure_signature(&case, &f);
            if got == recorded {
                Ok(format!(
                    "reproduced byte-identically: {} — {}",
                    f.kind.label(),
                    f.detail
                ))
            } else {
                Err(format!(
                    "failure differs from the recording:\n  recorded: {recorded}\n  replayed: {got}"
                ))
            }
        }
    }
}

fn kind_from_label(label: &str) -> Result<FailureKind, String> {
    for k in [
        FailureKind::Lost,
        FailureKind::Duplicated,
        FailureKind::Wedged,
        FailureKind::DrainStall,
        FailureKind::Abandoned,
        FailureKind::NonDeterministic,
        FailureKind::Panicked,
    ] {
        if k.label() == label {
            return Ok(k);
        }
    }
    Err(format!("unknown failure kind '{label}'"))
}

// ---------------------------------------------------------------------------
// Soak loop
// ---------------------------------------------------------------------------

/// Options for one [`run_soak`] invocation.
#[derive(Clone, Debug)]
pub struct SoakOpts {
    pub seed: u64,
    /// Wall-clock box; the loop never starts a new case past it.
    pub budget: Duration,
    /// Optional hard cap on generated cases (the smoke mode's knob).
    pub max_cases: Option<usize>,
    pub out_dir: PathBuf,
    pub pool: GenPool,
}

/// Summary of a soak run.
#[derive(Clone, Debug, Default)]
pub struct SoakSummary {
    pub cases: usize,
    pub passed: usize,
    pub skipped: usize,
    pub failed: usize,
    /// Minimized repro files written this run.
    pub repros: Vec<PathBuf>,
}

/// Runs the time-boxed chaos soak: generate → gate → execute → on failure,
/// minimize and write a replayable repro next to its black-box dump. Every
/// case appends one flat row to `out_dir/chaos.jsonl`.
pub fn run_soak(opts: &SoakOpts) -> std::io::Result<SoakSummary> {
    let vfs = noc_store::active();
    vfs.create_dir_all(&opts.out_dir)?;
    let log_path = opts.out_dir.join("chaos.jsonl");
    let mut log = vfs.open_append(&log_path)?;
    let mut gen = CaseGen::new(opts.seed, opts.pool);
    let mut summary = SoakSummary::default();
    let start = Instant::now();

    while start.elapsed() < opts.budget {
        if let Some(cap) = opts.max_cases {
            if summary.cases >= cap {
                break;
            }
        }
        summary.cases += 1;
        let case = gen.next_case();
        let base = case.fields(JsonObj::new());
        let row = if let Err(reason) = precheck(&case) {
            summary.skipped += 1;
            base.str_field("status", "skipped")
                .str_field("reason", &reason)
                .finish()
        } else {
            match run_case(&case, &opts.out_dir) {
                CaseOutcome::Pass(rep) => {
                    summary.passed += 1;
                    base.str_field("status", "pass")
                        .u64_field("delivered", rep.delivered)
                        .u64_field("purged_flits", rep.purged_flits)
                        .str_field("recert", &rep.recert.join(">"))
                        .str_field("digest", &format!("{:016x}", rep.digest))
                        .finish()
                }
                CaseOutcome::Saturated(why) => {
                    summary.skipped += 1;
                    base.str_field("status", "saturated")
                        .str_field("reason", &why)
                        .finish()
                }
                CaseOutcome::Fail(first) => {
                    summary.failed += 1;
                    let small = minimize(&case, first.kind, &opts.out_dir, 40);
                    // Re-run the minimized case to record *its* exact failure
                    // (details shift as the case shrinks).
                    let final_fail = match run_case(&small, &opts.out_dir) {
                        CaseOutcome::Fail(f) => f,
                        // Flaky shrink (should not happen: minimize only
                        // accepts reproducing candidates) — keep the original.
                        CaseOutcome::Pass(_) | CaseOutcome::Saturated(_) => first.clone(),
                    };
                    let repro = opts.out_dir.join(format!("repro_{}.json", small.key()));
                    vfs.write_atomic(&repro, (repro_line(&small, &final_fail) + "\n").as_bytes())?;
                    summary.repros.push(repro.clone());
                    let mut r = base
                        .str_field("status", final_fail.kind.label())
                        .str_field("reason", &final_fail.detail)
                        .str_field("repro", &repro.display().to_string())
                        .u64_field("minimized_events", small.schedule.len() as u64);
                    if let Some(bb) = &final_fail.blackbox {
                        r = r.str_field("blackbox", &bb.display().to_string());
                    }
                    r.finish()
                }
            }
        };
        // Sealed row + bounded retry with newline resync, same protocol as
        // the checkpoint journal (see `sweep::Checkpoint::record`).
        let sealed = noc_store::seal_line(&row);
        noc_store::RetryPolicy::default().run(|attempt| {
            let data = if attempt == 1 {
                format!("{sealed}\n")
            } else {
                format!("\n{sealed}\n")
            };
            log.append(data.as_bytes())
        })?;
    }
    Ok(summary)
}

// ---------------------------------------------------------------------------
// Acceptance-criteria cases (also used by the quick smoke binary)
// ---------------------------------------------------------------------------

/// The issue's escape-flap acceptance case: a kill+heal flap on an
/// escape-path link of a Duato configuration, e2e recovery armed. Must pass
/// every oracle with a two-epoch recert trace.
pub fn escape_flap_case() -> ChaosCase {
    ChaosCase {
        scheme: Scheme::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        },
        k: 4,
        vcs: 4,
        pattern: TrafficPattern::UniformRandom,
        rate: 0.06,
        cycles: 6_000,
        seed: 21,
        schedule: FaultSchedule::link_flap(NodeId(5), Direction::East, 300, 1_500),
        recovery: RecoveryConfig::drain().with_e2e(800, 50),
    }
}

/// The issue's intentionally-wedged acceptance case: fully-adaptive minimal
/// routing, single VC, recovery unarmed, saturating load — the statically
/// deadlockable configuration the paper motivates SEEC with — plus a
/// deliberately noisy 6-event flap train for the minimizer to strip.
pub fn wedged_adaptive_case() -> ChaosCase {
    ChaosCase {
        scheme: Scheme::Adaptive,
        k: 4,
        vcs: 1,
        pattern: TrafficPattern::UniformRandom,
        rate: 0.30,
        cycles: 12_000,
        seed: 0xA11CE,
        schedule: FaultSchedule::flap_train(NodeId(5), Direction::East, 400, 300, 500, 3),
        recovery: RecoveryConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seec_chaos_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn cases_round_trip_through_flat_json() {
        for case in [
            escape_flap_case(),
            wedged_adaptive_case(),
            CaseGen::new(7, GenPool::Full).next_case(),
        ] {
            let line = case.fields(JsonObj::new()).finish();
            let row = jsonio::parse_flat(&line).expect("case row must parse");
            let back = ChaosCase::from_row(&row).expect("case must deserialize");
            assert_eq!(
                line,
                back.fields(JsonObj::new()).finish(),
                "round trip must be byte-identical"
            );
            assert_eq!(case.key(), back.key());
        }
    }

    #[test]
    fn generator_is_deterministic_and_structurally_valid() {
        let mut a = CaseGen::new(0xC4A05, GenPool::Full);
        let mut b = CaseGen::new(0xC4A05, GenPool::Full);
        for _ in 0..20 {
            let ca = a.next_case();
            let cb = b.next_case();
            assert_eq!(
                ca.fields(JsonObj::new()).finish(),
                cb.fields(JsonObj::new()).finish()
            );
            let cfg = ca.config();
            cfg.fault
                .validate(cfg.cols, cfg.rows)
                .expect("generated schedule must validate");
            assert!(!ca.schedule.is_empty(), "every case carries a disturbance");
            assert!(
                ca.schedule.last_event_cycle().unwrap() < ca.cycles,
                "schedule must finish inside the injection window"
            );
        }
    }

    #[test]
    fn escape_flap_acceptance_passes_with_full_recert_trace() {
        let dir = tmpdir("escape_flap");
        let case = escape_flap_case();
        precheck(&case).expect("armed escape flap must pass the gate");
        match run_case(&case, &dir) {
            CaseOutcome::Pass(rep) => {
                assert!(rep.delivered > 100, "run too light: {}", rep.delivered);
                // Re-certification at each event: the kill epoch severs the
                // west-first escape path (honestly reported), the heal epoch
                // restores the Duato certificate.
                assert_eq!(rep.recert, vec!["escape-severed", "escape"]);
                assert_eq!(rep.stats.epochs.len(), 2);
                for ep in &rep.stats.epochs {
                    assert!(ep.recert.is_some(), "epoch trace missing recert");
                }
                assert_eq!(rep.stats.e2e_abandoned, 0);
            }
            CaseOutcome::Saturated(why) => panic!("escape flap saturated: {why}"),
            CaseOutcome::Fail(f) => panic!("escape flap failed: {} — {}", f.kind.label(), f.detail),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedged_adaptive_minimizes_to_two_events_and_replays_byte_identically() {
        let dir = tmpdir("wedge");
        let case = wedged_adaptive_case();
        assert!(
            precheck(&case).is_err(),
            "the wedge case must be exactly what the gate refuses"
        );
        let first = match run_case(&case, &dir) {
            CaseOutcome::Fail(f) => f,
            _ => panic!("acceptance wedge case did not wedge"),
        };
        assert_eq!(first.kind, FailureKind::Wedged);
        assert!(
            first.blackbox.as_ref().is_some_and(|p| p.is_file()),
            "wedge must leave a black-box dump"
        );

        let small = minimize(&case, FailureKind::Wedged, &dir, 40);
        assert!(
            small.schedule.len() <= 2,
            "minimizer left {} schedule events",
            small.schedule.len()
        );
        assert!(small.cycles <= case.cycles);

        let final_fail = match run_case(&small, &dir) {
            CaseOutcome::Fail(f) => f,
            _ => panic!("minimized case stopped failing"),
        };
        let repro = dir.join(format!("repro_{}.json", small.key()));
        std::fs::write(&repro, repro_line(&small, &final_fail) + "\n").unwrap();
        let verdict = replay(&repro, &dir).expect("repro must replay byte-identically");
        assert!(verdict.contains("byte-identically"), "{verdict}");

        // A tampered repro is caught by the integrity hash, not replayed.
        let tampered = std::fs::read_to_string(&repro)
            .unwrap()
            .replace("no progress", "no  progress");
        let bad = dir.join("tampered.json");
        std::fs::write(&bad, tampered).unwrap();
        assert!(replay(&bad, &dir)
            .unwrap_err()
            .contains("internally inconsistent"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn smoke_soak_is_green_and_logged() {
        let dir = tmpdir("soak");
        let opts = SoakOpts {
            seed: 0xC4A05,
            budget: Duration::from_secs(600),
            max_cases: Some(3),
            out_dir: dir.clone(),
            pool: GenPool::Smoke,
        };
        let summary = run_soak(&opts).unwrap();
        assert_eq!(summary.cases, 3);
        assert_eq!(summary.failed, 0, "smoke pool must stay green: {summary:?}");
        let rows: Vec<_> = std::fs::read_to_string(dir.join("chaos.jsonl"))
            .unwrap()
            .lines()
            .filter_map(|l| match noc_store::open_line(l) {
                noc_store::LineCheck::Sealed(p) => jsonio::parse_flat(p),
                noc_store::LineCheck::Legacy(_) | noc_store::LineCheck::Corrupt => {
                    panic!("soak rows must be sealed: {l:?}")
                }
            })
            .collect();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r["status"] == "pass" || r["status"] == "skipped", "{r:?}");
        }
        assert!(
            rows.iter().any(|r| r["status"] == "pass"),
            "at least one generated case must actually run: {rows:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
