//! Crash-resilient fault-sweep runner: checkpointed, panic-isolated,
//! watchdog-escalated.
//!
//! A sweep is a list of [`FaultPoint`]s (scheme × traffic × fault scenario).
//! Each point is executed under [`rayon::catch_panic`]: a panicking
//! datapoint — an injected fault wedging the network, an assertion, a bug —
//! is retried once and then recorded as a `"status": "failed"` row instead
//! of killing the whole sweep. Completed points are appended to a
//! [`Checkpoint`] (`results/*.ckpt.jsonl`), keyed by an FNV digest of the
//! full design point, so a restarted sweep re-executes only the missing
//! points and a finished checkpoint is byte-identical whether or not the
//! run was interrupted.
//!
//! While a point runs, a progress watchdog samples the network every few
//! hundred cycles; if nothing moves for [`watchdog::DEFAULT_STUCK_THRESHOLD`]
//! cycles the runner escalates: it captures a black-box dump (per-VC
//! occupancy, blocked heads, wait-for cycle witness, mechanism state, the
//! last-N switch traversals) to `results/blackbox_<key>.json` and panics
//! with the dump path — which the isolation layer turns into a failed row
//! pointing at the evidence.

use crate::jsonio::{self, JsonObj};
use crate::runner::Scheme;
use noc_sim::{watchdog, LockstepBatch, ShapeKey, Sim};
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::fault::fnv1a;
use noc_types::{FaultConfig, NetConfig, RecoveryConfig, SchemeKind};
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cycles between watchdog samples while a point runs. Small enough to
/// catch a wedge promptly, large enough to be free next to the simulation.
const WATCHDOG_PERIOD: u64 = 256;

/// Default lockstep batch width: how many shape-compatible points one rayon
/// task drives through a shared [`LockstepBatch`]. Overridden by the
/// `NOC_BATCH_WIDTH` environment variable; `1` disables batching (every
/// point runs the scalar path, exactly the pre-batching runner).
const DEFAULT_BATCH_WIDTH: usize = 4;

/// Reads and validates `NOC_BATCH_WIDTH` with the same rules as
/// `NOC_THREADS`: unset/empty means "use the default" (`Ok(None)`); any
/// non-empty value must be an integer ≥ 1, and `0` or garbage is an
/// **error**, never a silent fallback. Binaries validate this eagerly at
/// startup via [`crate::cli::args`] (exit status 2 on a bad value), and
/// `noc-serve` refuses to boot on one.
///
/// Width precedence (documented, never silent):
///
/// 1. an explicit width passed through [`run_sweep_with_width`] (tests and
///    the job service) wins;
/// 2. otherwise the `NOC_BATCH_WIDTH` environment variable;
/// 3. otherwise [`DEFAULT_BATCH_WIDTH`]. `1` disables batching.
pub fn env_batch_width() -> Result<Option<usize>, String> {
    rayon::parse_threads_env(
        "NOC_BATCH_WIDTH",
        std::env::var("NOC_BATCH_WIDTH").ok().as_deref(),
    )
}

/// The effective batch width for [`run_sweep`]: `NOC_BATCH_WIDTH` when
/// set, else [`DEFAULT_BATCH_WIDTH`]. Panics (loudly, with the validation
/// message) on a garbage value — binaries catch that case before any work
/// starts by validating in [`crate::cli::args`].
fn batch_width() -> usize {
    match env_batch_width() {
        Ok(w) => w.unwrap_or(DEFAULT_BATCH_WIDTH),
        Err(e) => panic!("invalid batch configuration: {e}"),
    }
}

/// One datapoint of a fault sweep.
#[derive(Clone, Debug)]
pub struct FaultPoint {
    /// Series tag grouping points into output curves ("transient",
    /// "dead-links", ...).
    pub series: &'static str,
    pub scheme: Scheme,
    pub k: u8,
    pub vcs: u8,
    pub pattern: TrafficPattern,
    /// Offered load in packets per node per cycle.
    pub rate: f64,
    pub cycles: u64,
    pub seed: u64,
    pub fault: FaultConfig,
    /// Runtime recovery arming for this point. Disabled by default; when
    /// armed, the point may run scenarios the static certifier rejects —
    /// provided the recovery channel itself certifies (see
    /// [`noc_verify::certify_recovery`]).
    pub recovery: RecoveryConfig,
}

impl FaultPoint {
    /// A small, fast design point: 4×4 mesh, 2 VCs, uniform-random traffic
    /// at a light load, short injection window, transient fault rate as
    /// given. Smoke tests and `noc-serve` quick jobs build on this.
    pub fn quick(series: &'static str, scheme: Scheme, transient: f64) -> FaultPoint {
        FaultPoint {
            series,
            scheme,
            k: 4,
            vcs: 2,
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            cycles: 3_000,
            seed: 0xA11CE,
            fault: FaultConfig::transient(transient),
            recovery: RecoveryConfig::default(),
        }
    }

    /// The network configuration this point simulates.
    pub fn config(&self) -> NetConfig {
        self.scheme
            .configure(NetConfig::synth(self.k, self.vcs))
            .with_seed(self.seed)
            .with_fault(self.fault.clone())
            .with_recovery(self.recovery.clone())
    }

    /// Short human identifier, also the match target for
    /// `NOC_SWEEP_PANIC_KEY` fault injection.
    pub fn ident(&self) -> String {
        format!(
            "{}:{}:{}:{:.4}",
            self.series,
            self.scheme.label(),
            self.pattern.label(),
            self.rate
        )
    }

    /// Stable checkpoint key: FNV-1a over every knob that changes the
    /// result — scheme, traffic, seed and the full config digest (which
    /// itself covers the fault scenario).
    pub fn key(&self) -> String {
        let s = format!(
            "{}|{}|{:016x}|{}|{}|{:016x}",
            self.scheme.label(),
            self.pattern.label(),
            self.rate.to_bits(),
            self.cycles,
            self.seed,
            self.config().digest(),
        );
        format!("{:016x}", fnv1a(s.as_bytes()))
    }
}

/// The quarantine side file for a journal: `<journal>.quarantine`, holding
/// the raw bytes of every bad line the loader dropped, for post-mortems.
fn quarantine_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("journal");
    path.with_file_name(format!("{name}.quarantine"))
}

/// Verdict of the journal loader on one line.
enum LoadedLine {
    /// Skipped silently: a blank line left behind by the append-recovery
    /// protocol (see [`Checkpoint::record`]).
    Blank,
    /// A good row (sealed-and-verified, or legacy pre-CRC).
    Row(BTreeMap<String, String>),
    /// CRC/trailer damage: a sealed record that fails verification, or a
    /// verified payload that is not flat JSON.
    Corrupt,
    /// No trailer and not parseable: the torn tail of a killed writer.
    Torn,
}

/// Classifies one journal line. Shared by [`Checkpoint::open`] (repair +
/// accounting) and [`Checkpoint::rows`] (read-back), so a bad record is
/// *never* parsed as data on any path.
fn load_line(line: &str) -> LoadedLine {
    if line.is_empty() {
        return LoadedLine::Blank;
    }
    match noc_store::open_line(line) {
        noc_store::LineCheck::Sealed(payload) => match jsonio::parse_flat(payload) {
            Some(row) => LoadedLine::Row(row),
            None => LoadedLine::Corrupt,
        },
        noc_store::LineCheck::Corrupt => LoadedLine::Corrupt,
        noc_store::LineCheck::Legacy(l) => match jsonio::parse_flat(l) {
            Some(row) => LoadedLine::Row(row),
            None => LoadedLine::Torn,
        },
    }
}

/// Append-only record of completed datapoints (`*.ckpt.jsonl`): one flat
/// JSON object per line, sealed with a CRC32 trailer
/// ([`noc_store::seal_line`]), each carrying a `"key"` field. Bad lines —
/// the torn tail of a killed writer, or a CRC-failed record from a lying
/// disk — are **detected, counted, quarantined** (raw bytes appended to
/// `<journal>.quarantine`) **and dropped** on load, never parsed as data
/// and never fatal: the affected point simply re-executes on resume, and
/// the journal is compacted in place (atomic write-temp-then-rename via
/// the [`noc_store::Vfs`]) so a resumed checkpoint ends up byte-identical
/// to an uninterrupted run's, garbage included-out. Rows from pre-CRC
/// journals (no trailer) still load.
pub struct Checkpoint {
    path: PathBuf,
    vfs: Arc<dyn noc_store::Vfs>,
    done: HashSet<String>,
    log: Mutex<Box<dyn noc_store::AppendLog>>,
    torn_dropped: usize,
    corrupt_dropped: usize,
    write_failed: AtomicBool,
}

impl Checkpoint {
    /// Opens through the process-wide [`noc_store::active`] Vfs.
    pub fn open(path: &Path) -> std::io::Result<Checkpoint> {
        Checkpoint::open_with_vfs(path, noc_store::active())
    }

    /// Opens (creating parents as needed) and loads the set of completed
    /// keys from any existing rows, repairing the journal: torn and
    /// corrupt lines are quarantined + compacted away (counted in
    /// [`Checkpoint::torn_dropped`] / [`Checkpoint::corrupt_dropped`]) and
    /// their points re-execute.
    pub fn open_with_vfs(path: &Path, vfs: Arc<dyn noc_store::Vfs>) -> std::io::Result<Checkpoint> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                vfs.create_dir_all(parent)?;
            }
        }
        let mut done = HashSet::new();
        let mut kept = String::new();
        let mut bad = String::new();
        let mut blank = 0usize;
        let mut torn_dropped = 0usize;
        let mut corrupt_dropped = 0usize;
        if let Ok(text) = vfs.read_to_string(path) {
            for line in text.lines() {
                match load_line(line) {
                    LoadedLine::Blank => blank += 1,
                    LoadedLine::Row(row) => {
                        if let Some(k) = row.get("key") {
                            done.insert(k.clone());
                        }
                        kept.push_str(line);
                        kept.push('\n');
                    }
                    LoadedLine::Corrupt => {
                        corrupt_dropped += 1;
                        bad.push_str(line);
                        bad.push('\n');
                    }
                    LoadedLine::Torn => {
                        torn_dropped += 1;
                        bad.push_str(line);
                        bad.push('\n');
                    }
                }
            }
        }
        if !bad.is_empty() {
            // Quarantine first (append — earlier incidents stay), so the
            // dropped bytes survive the compaction for post-mortems. Best
            // effort: a failing quarantine write must not block recovery.
            if let Ok(mut q) = vfs.open_append(&quarantine_path(path)) {
                let _ = q.append(bad.as_bytes());
            }
        }
        if torn_dropped + corrupt_dropped + blank > 0 {
            // Compact the journal: keep every good row byte-for-byte, drop
            // the garbage and the recovery blanks. Atomic replace, so a
            // crash *here* leaves either the old or the new journal, never
            // a half-written one.
            vfs.write_atomic(path, kept.as_bytes())?;
            if torn_dropped + corrupt_dropped > 0 {
                eprintln!(
                    "checkpoint {}: dropped {torn_dropped} torn and \
                     {corrupt_dropped} corrupt line(s) (quarantined to \
                     {}); the affected point(s) will re-execute",
                    path.display(),
                    quarantine_path(path).display(),
                );
            }
        }
        let log = vfs.open_append(path)?;
        Ok(Checkpoint {
            path: path.to_path_buf(),
            vfs,
            done,
            log: Mutex::new(log),
            torn_dropped,
            corrupt_dropped,
            write_failed: AtomicBool::new(false),
        })
    }

    /// Torn (unterminated, trailerless) lines dropped at open time.
    pub fn torn_dropped(&self) -> usize {
        self.torn_dropped
    }

    /// CRC-failed lines dropped at open time.
    pub fn corrupt_dropped(&self) -> usize {
        self.corrupt_dropped
    }

    /// Total bad lines repaired away at open time (torn + corrupt).
    pub fn repaired_lines(&self) -> usize {
        self.torn_dropped + self.corrupt_dropped
    }

    /// True once a [`Checkpoint::record`] exhausted its write retries: the
    /// journal can no longer persist rows and the run should park rather
    /// than continue unpersisted.
    pub fn write_failed(&self) -> bool {
        self.write_failed.load(Ordering::SeqCst)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The storage layer this journal writes through, for callers that
    /// persist sibling artifacts (repro files) next to the rows.
    pub fn vfs(&self) -> Arc<dyn noc_store::Vfs> {
        Arc::clone(&self.vfs)
    }

    /// True when a row for `key` was already recorded (including failed and
    /// skipped rows — a deterministic failure is not worth re-running on
    /// every resume; delete the checkpoint to retry from scratch).
    pub fn is_done(&self, key: &str) -> bool {
        self.done.contains(key)
    }

    /// Number of rows loaded at open time.
    pub fn done_count(&self) -> usize {
        self.done.len()
    }

    /// Appends one sealed row and flushes; returns whether the row is
    /// durably in the journal. On an append error the bytes that landed
    /// are unknown, so the bounded retries each prepend a newline: a stray
    /// partial fragment becomes its own line — detected, quarantined, and
    /// compacted away at the next open — and the blank lines the resyncs
    /// leave behind are skipped silently. When every retry fails the
    /// checkpoint latches [`Checkpoint::write_failed`] and the row is
    /// dropped (its point stays missing and re-executes once storage
    /// recovers).
    #[must_use = "a false return means the row was NOT persisted"]
    pub fn record(&self, line: &str) -> bool {
        let sealed = noc_store::seal_line(line);
        let mut log = self
            .log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let wrote = noc_store::RetryPolicy::default().run(|attempt| {
            let data = if attempt == 1 {
                format!("{sealed}\n")
            } else {
                format!("\n{sealed}\n")
            };
            log.append(data.as_bytes())
        });
        match wrote {
            Ok(()) => true,
            Err(e) => {
                self.write_failed.store(true, Ordering::SeqCst);
                eprintln!(
                    "checkpoint {}: write failed after retries ({e}); \
                     parking — the row will re-execute once storage recovers",
                    self.path.display()
                );
                false
            }
        }
    }

    /// Re-reads every good row from disk (used to build the final tables,
    /// so a resumed run reports previously-completed points too). Bad
    /// lines are skipped — same classifier as the loader, so corruption
    /// that appears *after* open never reaches a parser either.
    pub fn rows(&self) -> Vec<BTreeMap<String, String>> {
        let Ok(text) = self.vfs.read_to_string(&self.path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| match load_line(line) {
                LoadedLine::Row(row) => Some(row),
                LoadedLine::Blank | LoadedLine::Corrupt | LoadedLine::Torn => None,
            })
            .collect()
    }
}

/// Live progress of one [`run_sweep`] invocation, delivered to the
/// [`SweepCtx::progress`] callback after every recorded row.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepProgress {
    /// Rows present for this sweep so far (resumed + recorded this run).
    pub done: usize,
    /// Total points in the sweep.
    pub total: usize,
    /// `"status": "failed"` rows recorded this run.
    pub failed: usize,
}

/// Execution context for a service-driven sweep: a cooperative
/// cancellation token observed at sweep-point granularity (between points,
/// and between watchdog slices inside a point), plus an optional progress
/// callback. A point that observes cancellation mid-flight is abandoned
/// *without* a checkpoint row — it stays missing and re-executes on the
/// next resume, which is what keeps a cancelled-then-resumed sweep
/// byte-identical to an uninterrupted one.
pub struct SweepCtx<'a> {
    pub cancel: &'a rayon::CancelToken,
    pub progress: Option<&'a (dyn Fn(SweepProgress) + Sync)>,
}

/// How a single execution attempt ended (when it did not panic).
enum PointRun {
    /// Simulated to completion.
    Done(Box<noc_sim::Stats>),
    /// Deliberately not simulated; `status` goes into the row verbatim.
    Skipped {
        status: &'static str,
        reason: String,
    },
    /// Abandoned mid-run by a fired cancellation token: no row.
    Interrupted,
}

/// The certification gate shared by the scalar and batched paths. Returns
/// `Some` when the point must not be simulated; the payload goes into the
/// checkpoint row verbatim.
///
/// Static gate: on a degraded mesh, re-certify before running. An
/// unroutable scenario cannot run at all; a scheme whose deadlock freedom
/// rests on the static routing relation must keep a certificate on the
/// *degraded* CDG. Recovery schemes (SEEC/mSEEC/SPIN/...) are exempt from
/// the certificate — surviving an uncertifiable mesh is exactly what they
/// are for — but still need routability. An armed recovery channel
/// substitutes for the static certificate, but only if it certifies
/// itself: the drain channel must be acyclic/complete and its threshold
/// must undercut the watchdog panic.
fn gate_point(p: &FaultPoint, cfg: &NetConfig) -> Option<(&'static str, String)> {
    let report = noc_verify::certify_degraded(cfg);
    use noc_verify::DegradedVerdict as V;
    match &report.verdict {
        V::Unroutable { src, dest } => {
            return Some((
                "unroutable",
                format!("dead set disconnects node {} from node {}", src.0, dest.0),
            ));
        }
        V::EscapeSevered { src, dest }
            if matches!(
                p.scheme.kind(),
                SchemeKind::None | SchemeKind::EscapeVc | SchemeKind::Tfc
            ) =>
        {
            return Some((
                "escape-severed",
                format!(
                    "no live west-first path from node {} to node {}; Duato certificate void",
                    src.0, dest.0
                ),
            ));
        }
        V::Deadlockable { .. }
            if !p.recovery.enabled
                && matches!(
                    p.scheme.kind(),
                    SchemeKind::None | SchemeKind::EscapeVc | SchemeKind::Tfc
                ) =>
        {
            return Some((
                "uncertified",
                "degraded CDG has a cyclic witness and the scheme has no \
                 runtime recovery"
                    .to_string(),
            ));
        }
        _ => {}
    }
    if p.recovery.any() {
        let rec = noc_verify::certify_recovery(cfg);
        if !rec.certified() {
            let rendered = rec.render();
            let detail = rendered
                .lines()
                .find(|l| l.starts_with("recovery:"))
                .unwrap_or("recovery channel refused")
                .to_string();
            return Some(("recovery-uncertified", detail));
        }
    }
    None
}

/// Builds the simulation for a gated point — identical construction on the
/// scalar and batched paths, so their results are too.
fn build_point_sim(p: &FaultPoint, cfg: NetConfig) -> Sim {
    let wl = SyntheticWorkload::new(p.pattern, p.rate, cfg.cols, cfg.rows, cfg.warmup, p.seed);
    let mech = p.scheme.mechanism(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), mech);
    sim.net.enable_flight_recorder(64);
    sim
}

/// Escalates a wedged simulation: captures the black-box dump and panics
/// with its path (the isolation layer turns this into a failed row).
fn escalate_wedge(p: &FaultPoint, sim: &Sim, dump_dir: &Path) -> ! {
    let bb = watchdog::BlackBox::capture(&sim.net, &p.scheme.label(), &sim.mech.debug_state());
    let path = dump_dir.join(format!("blackbox_{}.json", p.key()));
    let _ = std::fs::create_dir_all(dump_dir);
    let where_ = match bb.write(&path) {
        Ok(()) => format!("black-box dump at {}", path.display()),
        Err(e) => format!("black-box dump failed to write to {}: {e}", path.display()),
    };
    panic!(
        "point {} wedged: no progress for {} cycles at cycle {} — {where_}",
        p.ident(),
        watchdog::DEFAULT_STUCK_THRESHOLD,
        sim.net.cycle
    );
}

/// Executes one datapoint. May panic — on a wedged network (after writing
/// the black-box dump), on an injected `NOC_SWEEP_PANIC_KEY` match, or on
/// any simulator bug; the caller isolates it. A fired cancellation token
/// abandons the point between watchdog slices.
fn execute_point(p: &FaultPoint, dump_dir: &Path, ctx: Option<&SweepCtx>) -> PointRun {
    if let Ok(needle) = std::env::var("NOC_SWEEP_PANIC_KEY") {
        let id = p.ident();
        if !needle.is_empty() && (id.contains(&needle) || p.key().contains(&needle)) {
            panic!("injected test panic (NOC_SWEEP_PANIC_KEY={needle}) for point {id}");
        }
    }
    assert!(
        !p.scheme.is_deflection(),
        "fault sweeps drive VC-router schemes only"
    );
    let cancelled = || ctx.is_some_and(|c| c.cancel.is_cancelled());
    if cancelled() {
        return PointRun::Interrupted;
    }
    let cfg = p.config();
    if let Some((status, reason)) = gate_point(p, &cfg) {
        return PointRun::Skipped { status, reason };
    }
    let mut sim = build_point_sim(p, cfg);

    // Run in watchdog-sized slices; escalate a sustained stall to a
    // black-box dump + panic instead of spinning to the cycle budget.
    let mut remaining = p.cycles;
    while remaining > 0 {
        let slice = WATCHDOG_PERIOD.min(remaining);
        sim.run(slice);
        remaining -= slice;
        if watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
            escalate_wedge(p, &sim, dump_dir);
        }
        if cancelled() {
            return PointRun::Interrupted;
        }
    }
    PointRun::Done(Box::new(sim.finish().clone()))
}

/// Shared row prefix: identity first (key/series/scheme/...), then the
/// outcome fields. Field order is fixed so identical results render
/// byte-identical lines.
fn row_base(p: &FaultPoint, status: &str) -> JsonObj {
    JsonObj::new()
        .str_field("key", &p.key())
        .str_field("series", p.series)
        .str_field("scheme", &p.scheme.label())
        .str_field("pattern", p.pattern.label())
        .u64_field("k", u64::from(p.k))
        .u64_field("vcs", u64::from(p.vcs))
        .f64_field("rate", p.rate, 4)
        .f64_field("transient", p.fault.transient_rate, 6)
        .u64_field(
            "dead_links",
            p.fault.dead_links.len() as u64 + u64::from(p.fault.random_dead_links),
        )
        .u64_field("fault_seed", p.fault.fault_seed)
        .str_field("recovery", &p.recovery.canonical())
        .u64_field("cycles", p.cycles)
        .u64_field("seed", p.seed)
        .str_field("status", status)
}

/// Renders the checkpoint row for a completed simulation. A run that only
/// finished because the drain channel rescued wedged packets is reported as
/// `"recovered"`, not `"ok"` — same data, different confidence.
fn render_done(p: &FaultPoint, s: &noc_sim::Stats) -> String {
    let nodes = usize::from(p.k) * usize::from(p.k);
    let retx_overhead = if s.link_flit_hops > 0 {
        s.retransmitted_flits as f64 / s.link_flit_hops as f64
    } else {
        0.0
    };
    let status = if s.drain_recoveries > 0 {
        "recovered"
    } else {
        "ok"
    };
    let pct = |q: f64| s.percentile_latency_all(q).unwrap_or(0);
    row_base(p, status)
        .f64_field("avg_latency", s.avg_total_latency(), 3)
        .u64_field("p50_latency", pct(50.0))
        .u64_field("p95_latency", pct(95.0))
        .u64_field("p99_latency", pct(99.0))
        .f64_field("throughput", s.throughput(nodes), 6)
        .u64_field("ejected_packets", s.ejected_packets)
        .u64_field("corrupted_flits", s.corrupted_flits)
        .u64_field("retransmitted_flits", s.retransmitted_flits)
        .u64_field("link_acks", s.link_acks)
        .u64_field("link_nacks", s.link_nacks)
        .u64_field("recovery_events", s.recovery_events)
        .u64_field("drain_recoveries", s.drain_recoveries)
        .u64_field("recovery_victim_hops", s.recovery_victim_hops)
        .u64_field("recovery_cycles_lost", s.recovery_cycles_lost)
        .u64_field("e2e_retransmits", s.e2e_retransmits)
        .u64_field("e2e_duplicates_dropped", s.e2e_duplicates_dropped)
        .u64_field("e2e_abandoned", s.e2e_abandoned)
        .f64_field("retx_overhead", retx_overhead, 6)
        .finish()
}

/// Renders the checkpoint row for a failed or skipped point.
fn render_status(p: &FaultPoint, status: &str, reason: &str) -> String {
    row_base(p, status).str_field("reason", reason).finish()
}

/// Executes one point with panic isolation: a first panic is retried once
/// (to shed one-off environmental noise), a second one becomes a
/// `"status": "failed"` row. When the watchdog escalation left a black-box
/// dump for this point, the failed row carries its path under `"blackbox"`,
/// so post-mortem tooling can go from checkpoint straight to evidence.
/// Returns the rendered row and whether it failed; `None` when the point
/// was abandoned by cancellation (no row — the point stays missing).
fn run_isolated(p: &FaultPoint, dump_dir: &Path, ctx: Option<&SweepCtx>) -> Option<(String, bool)> {
    let attempt = || rayon::catch_panic(|| execute_point(p, dump_dir, ctx));
    let outcome = attempt().or_else(|_first| attempt());
    match outcome {
        Ok(PointRun::Done(stats)) => Some((render_done(p, &stats), false)),
        Ok(PointRun::Skipped { status, reason }) => {
            Some((render_status(p, status, &reason), false))
        }
        Ok(PointRun::Interrupted) => None,
        Err(msg) => {
            let mut row = row_base(p, "failed").str_field("reason", &msg);
            let dump = dump_dir.join(format!("blackbox_{}.json", p.key()));
            if dump.is_file() {
                row = row.str_field("blackbox", &dump.display().to_string());
            }
            Some((row.finish(), true))
        }
    }
}

/// Partitions `todo` into lockstep-compatible chunks of at most `width`
/// points: equal [`ShapeKey`] (the structural config fields the batch
/// executor shares) and equal cycle budget (so one watchdog-sliced loop
/// drives the whole chunk). Width 1 degenerates to one chunk per point —
/// the scalar runner.
fn chunk_compatible<'a>(todo: &[&'a FaultPoint], width: usize) -> Vec<Vec<&'a FaultPoint>> {
    if width <= 1 {
        return todo.iter().map(|p| vec![*p]).collect();
    }
    let mut groups: BTreeMap<(u64, u64), Vec<&FaultPoint>> = BTreeMap::new();
    for &p in todo {
        let key = (ShapeKey::of(&p.config()).digest(), p.cycles);
        groups.entry(key).or_default().push(p);
    }
    groups
        .into_values()
        .flat_map(|g| {
            g.chunks(width)
                .map(<[&FaultPoint]>::to_vec)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Executes a compatible chunk through one [`LockstepBatch`]. Gated points
/// become status rows without a lane; the rest run in lockstep under the
/// same watchdog slicing as the scalar path. May panic (a wedged lane, a
/// simulator bug) — the caller falls back to per-point isolation, which
/// reproduces the scalar outcome for every point in the chunk. A fired
/// cancellation token abandons every in-flight lane (`None` entries — no
/// rows; the points stay missing).
fn execute_chunk_batched(
    chunk: &[&FaultPoint],
    dump_dir: &Path,
    ctx: Option<&SweepCtx>,
) -> Vec<Option<(String, bool)>> {
    let mut rows: Vec<Option<(String, bool)>> = (0..chunk.len()).map(|_| None).collect();
    let mut lanes = Vec::new();
    let mut lane_points = Vec::new();
    for (i, p) in chunk.iter().enumerate() {
        assert!(
            !p.scheme.is_deflection(),
            "fault sweeps drive VC-router schemes only"
        );
        let cfg = p.config();
        match gate_point(p, &cfg) {
            Some((status, reason)) => rows[i] = Some((render_status(p, status, &reason), false)),
            None => {
                lanes.push(build_point_sim(p, cfg));
                lane_points.push(i);
            }
        }
    }
    if !lanes.is_empty() {
        let mut batch = LockstepBatch::new(lanes);
        let mut remaining = chunk[lane_points[0]].cycles;
        while remaining > 0 {
            if ctx.is_some_and(|c| c.cancel.is_cancelled()) {
                return rows;
            }
            let slice = WATCHDOG_PERIOD.min(remaining);
            batch.run(slice);
            remaining -= slice;
            for (lane, &i) in batch.lanes().iter().zip(&lane_points) {
                if watchdog::looks_stuck(&lane.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
                    escalate_wedge(chunk[i], lane, dump_dir);
                }
            }
        }
        for (lane, &i) in batch.lanes_mut().iter_mut().zip(&lane_points) {
            let stats = lane.finish().clone();
            rows[i] = Some((render_done(chunk[i], &stats), false));
        }
    }
    rows
}

/// Runs one chunk with the same isolation contract as [`run_isolated`]:
/// any panic on the batched path demotes the whole chunk to per-point
/// scalar execution, whose own retry/failed-row semantics then apply. The
/// `NOC_SWEEP_PANIC_KEY` injection hook targets individual points, so a
/// chunk containing a match routes through the scalar path up front.
/// `None` entries are points abandoned by cancellation.
fn run_chunk(
    chunk: &[&FaultPoint],
    dump_dir: &Path,
    ctx: Option<&SweepCtx>,
) -> Vec<Option<(String, bool)>> {
    let scalar = |chunk: &[&FaultPoint]| -> Vec<Option<(String, bool)>> {
        chunk
            .iter()
            .map(|p| run_isolated(p, dump_dir, ctx))
            .collect()
    };
    if chunk.len() == 1 {
        return scalar(chunk);
    }
    if let Ok(needle) = std::env::var("NOC_SWEEP_PANIC_KEY") {
        if !needle.is_empty()
            && chunk
                .iter()
                .any(|p| p.ident().contains(&needle) || p.key().contains(&needle))
        {
            return scalar(chunk);
        }
    }
    match rayon::catch_panic(|| execute_chunk_batched(chunk, dump_dir, ctx)) {
        Ok(rows) => rows,
        Err(_) => scalar(chunk),
    }
}

/// Summary of one [`run_sweep`] invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOutcome {
    /// Points that recorded a row this run (completed, skipped by the
    /// certification gate, or failed).
    pub executed: usize,
    /// Points already present in the checkpoint and not re-run.
    pub resumed: usize,
    /// Points left untouched because of a `max_points` cap.
    pub deferred: usize,
    /// Points recorded as `"status": "failed"` this run.
    pub failed: usize,
    /// Points abandoned without a row by a fired cancellation token (they
    /// stay missing and re-execute on the next resume).
    pub interrupted: usize,
}

/// Runs every point of `points` that the checkpoint does not already hold,
/// recording each row as it completes. Missing points are first grouped
/// into lockstep-compatible chunks ([`chunk_compatible`], width from
/// `NOC_BATCH_WIDTH`), then the chunks execute in parallel — batching
/// trades rayon fan-out granularity for the shared per-cycle skeleton, and
/// per-lane results are byte-identical to scalar runs (the
/// `batch_differential` test pins this). `max_points` caps how many
/// missing points this invocation executes (the rest stay missing — the
/// mechanism behind CI's interrupted-then-resumed sweep test).
pub fn run_sweep(
    points: &[FaultPoint],
    ckpt: &Checkpoint,
    max_points: Option<usize>,
    dump_dir: &Path,
) -> SweepOutcome {
    run_sweep_with_width(points, ckpt, max_points, dump_dir, batch_width())
}

/// [`run_sweep`] with an explicit lockstep batch width (tests use this to
/// avoid racing on the process environment).
pub fn run_sweep_with_width(
    points: &[FaultPoint],
    ckpt: &Checkpoint,
    max_points: Option<usize>,
    dump_dir: &Path,
    width: usize,
) -> SweepOutcome {
    run_sweep_ctx(points, ckpt, max_points, dump_dir, width, None)
}

/// The full-control entry point behind [`run_sweep`]: explicit lockstep
/// width plus an optional [`SweepCtx`] carrying a cooperative cancellation
/// token and a progress callback. This is what the `noc-serve` job service
/// drives: cancellation (explicit or deadline) stops the sweep at point
/// granularity — chunks not yet claimed never start, in-flight points are
/// abandoned between watchdog slices without recording a row — and the
/// progress callback fires after every recorded row.
pub fn run_sweep_ctx(
    points: &[FaultPoint],
    ckpt: &Checkpoint,
    max_points: Option<usize>,
    dump_dir: &Path,
    width: usize,
    ctx: Option<&SweepCtx>,
) -> SweepOutcome {
    let todo: Vec<&FaultPoint> = points.iter().filter(|p| !ckpt.is_done(&p.key())).collect();
    let resumed = points.len() - todo.len();
    let missing = todo.len();
    let todo: Vec<&FaultPoint> = match max_points {
        Some(n) => todo.into_iter().take(n).collect(),
        None => todo,
    };
    let deferred = missing - todo.len();
    let attempted = todo.len();
    let failed = AtomicUsize::new(0);
    let recorded = AtomicUsize::new(0);
    let total = points.len();
    let chunks = chunk_compatible(&todo, width);
    // A quiet local token keeps the cancellable executor on one code path
    // whether or not a context was supplied.
    let quiet = rayon::CancelToken::new();
    let token = ctx.map_or(&quiet, |c| c.cancel);
    rayon::for_each_cancellable(chunks, token, |chunk: Vec<&FaultPoint>| {
        // A journal that can no longer persist rows parks the sweep:
        // chunks not yet started are abandoned (their points stay missing
        // and re-execute once storage recovers) rather than simulated into
        // rows that would be lost.
        if ckpt.write_failed() {
            return;
        }
        for row in run_chunk(&chunk, dump_dir, ctx) {
            let Some((row, was_failure)) = row else {
                continue;
            };
            if !ckpt.record(&row) {
                // Not persisted: the point stays missing. Stop recording
                // this chunk; the guard above stops the rest of the sweep.
                return;
            }
            let done_now = recorded.fetch_add(1, Ordering::Relaxed) + 1;
            if was_failure {
                failed.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(cb) = ctx.and_then(|c| c.progress) {
                cb(SweepProgress {
                    done: resumed + done_now,
                    total,
                    failed: failed.load(Ordering::Relaxed),
                });
            }
        }
    });
    let recorded = recorded.load(Ordering::Relaxed);
    SweepOutcome {
        executed: recorded,
        resumed,
        deferred,
        failed: failed.load(Ordering::Relaxed),
        interrupted: attempted - recorded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Direction, NodeId};

    fn point(scheme: Scheme, transient: f64) -> FaultPoint {
        FaultPoint {
            series: "test",
            scheme,
            k: 4,
            vcs: 4,
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            cycles: 3_000,
            seed: 0xA11CE,
            fault: FaultConfig::transient(transient),
            recovery: RecoveryConfig::default(),
        }
    }

    /// `NOC_SWEEP_PANIC_KEY` is process-global; tests that set it must not
    /// overlap or they would observe each other's needle.
    static PANIC_KEY_LOCK: Mutex<()> = Mutex::new(());

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seec_sweep_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn keys_are_stable_and_distinguish_points() {
        let a = point(Scheme::seec(), 0.01);
        assert_eq!(a.key(), a.key());
        assert_ne!(a.key(), point(Scheme::seec(), 0.02).key());
        assert_ne!(a.key(), point(Scheme::mseec(), 0.01).key());
        let mut b = a.clone();
        b.seed ^= 1;
        assert_ne!(a.key(), b.key());
        // Arming recovery changes the design point, hence the key.
        let mut c = a.clone();
        c.recovery = RecoveryConfig::drain();
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn torn_final_line_is_dropped_at_every_byte_offset() {
        // Simulate `kill -9` mid-write: truncate a two-row journal at every
        // byte offset inside the final line (plus the missing-newline case)
        // and require the loader to (a) parse as "1 done, 1 torn" for every
        // strict prefix, (b) parse as "2 done, 0 torn" only for the intact
        // line, and (c) compact the journal so a reopen is clean.
        let dir = tmpdir("torn_offsets");
        let path = dir.join("torn.ckpt.jsonl");
        let row1 = JsonObj::new()
            .str_field("key", "aaaa")
            .str_field("status", "ok")
            .finish();
        let row2 = JsonObj::new()
            .str_field("key", "bbbb")
            .str_field("status", "ok")
            .str_field("reason", "has } and \" and \\ inside")
            .finish();
        let full = format!("{row1}\n{row2}\n");
        let last_start = full.len() - row2.len() - 1;
        for cut in 0..=row2.len() {
            let truncated = &full[..last_start + cut];
            std::fs::write(&path, truncated).unwrap();
            let ckpt = Checkpoint::open(&path).unwrap();
            if cut == row2.len() {
                // Complete line, only the trailing newline lost: a valid row.
                assert_eq!(ckpt.done_count(), 2, "cut={cut}");
                assert_eq!(ckpt.torn_dropped(), 0, "cut={cut}");
            } else if cut == 0 {
                // Torn exactly at the line boundary: nothing to drop.
                assert_eq!(ckpt.done_count(), 1, "cut={cut}");
                assert_eq!(ckpt.torn_dropped(), 0, "cut={cut}");
            } else {
                assert_eq!(ckpt.done_count(), 1, "cut={cut}: {truncated:?}");
                assert_eq!(ckpt.torn_dropped(), 1, "cut={cut}: {truncated:?}");
            }
            assert!(ckpt.is_done("aaaa"));
            drop(ckpt);
            // The journal was compacted: reopening drops nothing.
            let again = Checkpoint::open(&path).unwrap();
            assert_eq!(again.torn_dropped(), 0, "cut={cut}: repair not sticky");
            assert_eq!(
                again.done_count(),
                if cut == row2.len() { 2 } else { 1 },
                "cut={cut}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_line_point_reexecutes_and_matches_uninterrupted() {
        // End-to-end satellite check: tear the final checkpoint line, resume,
        // and require the repaired + resumed journal to hold exactly the row
        // set of an uninterrupted run.
        let dir = tmpdir("torn_resume");
        let path = dir.join("t.ckpt.jsonl");
        let points = vec![point(Scheme::seec(), 0.0), point(Scheme::mseec(), 0.0)];
        let ckpt = Checkpoint::open(&path).unwrap();
        run_sweep(&points, &ckpt, None, &dir);
        drop(ckpt);
        // Tear the last row mid-line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let ckpt = Checkpoint::open(&path).unwrap();
        // A tear inside the CRC trailer classifies as corrupt, one before
        // the trailer as torn; either way exactly one line was repaired.
        assert_eq!(ckpt.repaired_lines(), 1);
        let o = run_sweep(&points, &ckpt, None, &dir);
        assert_eq!((o.executed, o.resumed), (1, 1), "torn point re-executes");
        // Same sorted line set as an uninterrupted run.
        let uckpt = Checkpoint::open(&dir.join("u.ckpt.jsonl")).unwrap();
        run_sweep(&points, &uckpt, None, &dir);
        let sorted = |p: &Path| {
            let mut ls: Vec<String> = std::fs::read_to_string(p)
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect();
            ls.sort();
            ls
        };
        assert_eq!(sorted(&path), sorted(uckpt.path()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_single_byte_flip_in_any_record_is_detected_and_quarantined() {
        // The CRC satellite, end-to-end: flip every byte of every sealed
        // record in a real journal (one at a time) and require the loader
        // to drop exactly that record — detected, counted, quarantined —
        // and never load a row with altered bytes.
        let dir = tmpdir("flip");
        let path = dir.join("f.ckpt.jsonl");
        let ckpt = Checkpoint::open(&path).unwrap();
        assert!(ckpt.record(
            &JsonObj::new()
                .str_field("key", "aaaa")
                .str_field("status", "ok")
                .finish()
        ));
        assert!(ckpt.record(
            &JsonObj::new()
                .str_field("key", "bbbb")
                .u64_field("cycles", 42)
                .finish()
        ));
        drop(ckpt);
        let pristine = std::fs::read_to_string(&path).unwrap();
        let newline_at: Vec<usize> = pristine
            .bytes()
            .enumerate()
            .filter_map(|(i, b)| (b == b'\n').then_some(i))
            .collect();
        for i in 0..pristine.len() {
            if newline_at.contains(&i) {
                continue; // flipping the separator merges lines: below
            }
            for flip in [0x01u8, 0x20, 0x80] {
                let mut bytes = pristine.clone().into_bytes();
                bytes[i] ^= flip;
                let Ok(mutated) = String::from_utf8(bytes) else {
                    continue;
                };
                std::fs::write(&path, &mutated).unwrap();
                let _ = std::fs::remove_file(path.with_file_name("f.ckpt.jsonl.quarantine"));
                let ckpt = Checkpoint::open(&path).unwrap();
                assert_eq!(
                    ckpt.repaired_lines(),
                    1,
                    "flip at {i} (^{flip:#x}) not detected: {mutated:?}"
                );
                assert_eq!(ckpt.done_count(), 1, "flip at {i}");
                // The loaded row is the untouched one, byte-for-byte.
                let rows = ckpt.rows();
                assert_eq!(rows.len(), 1, "flip at {i}");
                // The dropped bytes are quarantined for post-mortems.
                let q = std::fs::read_to_string(path.with_file_name("f.ckpt.jsonl.quarantine"))
                    .unwrap();
                assert_eq!(q.lines().count(), 1, "flip at {i}");
                // Repair is sticky: a reopen is clean and both-rows short.
                drop(ckpt);
                let again = Checkpoint::open(&path).unwrap();
                assert_eq!(again.repaired_lines(), 0, "flip at {i}: repair not sticky");
            }
        }
        // A flipped newline merges two sealed records; the merged line has
        // a valid trailer only for the second half's CRC over the whole —
        // which cannot match — so the line drops and BOTH rows re-execute.
        let mut bytes = pristine.clone().into_bytes();
        bytes[newline_at[0]] ^= 0x01;
        std::fs::write(&path, String::from_utf8(bytes).unwrap()).unwrap();
        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.repaired_lines(), 1);
        assert_eq!(ckpt.done_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_reexecutes_and_matches_uninterrupted() {
        // Resume-after-corruption: flip one payload byte of a finished
        // sweep journal, reopen (repairs + quarantines), re-run — the
        // journal must match an uninterrupted run's, line for line.
        let dir = tmpdir("corrupt_resume");
        let path = dir.join("c.ckpt.jsonl");
        let points = vec![point(Scheme::seec(), 0.0), point(Scheme::mseec(), 0.0)];
        let ckpt = Checkpoint::open(&path).unwrap();
        run_sweep(&points, &ckpt, None, &dir);
        drop(ckpt);
        // Flip a byte in the middle of the first record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.corrupt_dropped(), 1, "payload flip must fail the CRC");
        let o = run_sweep(&points, &ckpt, None, &dir);
        assert_eq!((o.executed, o.resumed), (1, 1), "corrupt point re-executes");
        let uckpt = Checkpoint::open(&dir.join("u.ckpt.jsonl")).unwrap();
        run_sweep(&points, &uckpt, None, &dir);
        let sorted = |p: &Path| {
            let mut ls: Vec<String> = std::fs::read_to_string(p)
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect();
            ls.sort();
            ls
        };
        assert_eq!(sorted(&path), sorted(uckpt.path()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_write_failure_parks_the_sweep_with_rows_intact() {
        // A disk that dies mid-sweep: the first record lands, the second
        // hits a stuck disk. The sweep must park (points stay missing),
        // never spin, and a later run on healthy storage must complete to
        // the uninterrupted row set.
        let dir = tmpdir("stuck_sweep");
        let path = dir.join("s.ckpt.jsonl");
        let points = vec![point(Scheme::seec(), 0.0), point(Scheme::mseec(), 0.0)];
        let vfs: std::sync::Arc<dyn noc_store::Vfs> =
            std::sync::Arc::new(noc_store::FaultVfs::new(
                noc_store::FaultPlan::default().with_event(1, noc_store::FaultKind::Stuck),
            ));
        let ckpt = Checkpoint::open_with_vfs(&path, vfs).unwrap();
        let o = run_sweep_with_width(&points, &ckpt, None, &dir, 1);
        assert!(ckpt.write_failed(), "stuck disk must latch write_failed");
        assert_eq!(o.executed + o.interrupted, 2);
        assert!(
            o.interrupted >= 1,
            "unpersisted points must count interrupted"
        );
        drop(ckpt);
        // Storage recovers: the parked points re-execute and the journal
        // matches an uninterrupted run's.
        let ckpt = Checkpoint::open(&path).unwrap();
        let o = run_sweep(&points, &ckpt, None, &dir);
        assert_eq!(o.executed + o.resumed, 2);
        assert!(!ckpt.write_failed());
        let uckpt = Checkpoint::open(&dir.join("u.ckpt.jsonl")).unwrap();
        run_sweep(&points, &uckpt, None, &dir);
        let sorted = |p: &Path| {
            let mut ls: Vec<String> = std::fs::read_to_string(p)
                .unwrap()
                .lines()
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect();
            ls.sort();
            ls
        };
        assert_eq!(sorted(&path), sorted(uckpt.path()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_width_env_is_validated_not_silently_defaulted() {
        // Validation is pure (no process-global env mutation in tests):
        // exercise the shared parser with NOC_BATCH_WIDTH's name.
        let p = |v: Option<&str>| rayon::parse_threads_env("NOC_BATCH_WIDTH", v);
        assert_eq!(p(None), Ok(None));
        assert_eq!(p(Some("")), Ok(None));
        assert_eq!(p(Some("4")), Ok(Some(4)));
        assert_eq!(p(Some(" 8 ")), Ok(Some(8)));
        let zero = p(Some("0")).unwrap_err();
        assert!(zero.contains("NOC_BATCH_WIDTH"), "{zero}");
        assert!(zero.contains("at least 1"), "{zero}");
        let junk = p(Some("wide")).unwrap_err();
        assert!(junk.contains("not a positive integer"), "{junk}");
        assert!(p(Some("-1")).is_err());
        assert!(p(Some("2.5")).is_err());
    }

    #[test]
    fn cancelled_sweep_abandons_missing_points_without_rows() {
        let dir = tmpdir("cancelled");
        let ckpt = Checkpoint::open(&dir.join("c.ckpt.jsonl")).unwrap();
        let points = vec![
            point(Scheme::seec(), 0.0),
            point(Scheme::seec(), 0.01),
            point(Scheme::mseec(), 0.0),
        ];
        let token = rayon::CancelToken::new();
        token.cancel();
        let ctx = SweepCtx {
            cancel: &token,
            progress: None,
        };
        let o = run_sweep_ctx(&points, &ckpt, None, &dir, 1, Some(&ctx));
        assert_eq!(o.executed, 0);
        assert_eq!(o.interrupted, 3);
        assert_eq!(ckpt.rows().len(), 0, "no rows for abandoned points");
        // Resuming with a quiet token completes everything and matches an
        // uninterrupted run.
        let ckpt = Checkpoint::open(&dir.join("c.ckpt.jsonl")).unwrap();
        let o = run_sweep(&points, &ckpt, None, &dir);
        assert_eq!((o.executed, o.interrupted), (3, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_token_interrupts_and_progress_reports_rows() {
        use std::sync::atomic::AtomicUsize;
        let dir = tmpdir("deadline");
        let ckpt = Checkpoint::open(&dir.join("d.ckpt.jsonl")).unwrap();
        let points = vec![point(Scheme::seec(), 0.0), point(Scheme::mseec(), 0.0)];
        let token = rayon::CancelToken::new();
        let seen = AtomicUsize::new(0);
        let cb = |p: SweepProgress| {
            seen.store(p.done, Ordering::Relaxed);
            assert_eq!(p.total, 2);
        };
        let ctx = SweepCtx {
            cancel: &token,
            progress: Some(&cb),
        };
        let o = run_sweep_ctx(&points, &ckpt, None, &dir, 1, Some(&ctx));
        assert_eq!((o.executed, o.interrupted), (2, 0));
        assert_eq!(seen.load(Ordering::Relaxed), 2, "progress saw both rows");
        // An already-expired deadline interrupts a fresh sweep immediately.
        let token = rayon::CancelToken::new();
        token.set_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let ctx = SweepCtx {
            cancel: &token,
            progress: None,
        };
        let ckpt2 = Checkpoint::open(&dir.join("d2.ckpt.jsonl")).unwrap();
        let o = run_sweep_ctx(&points, &ckpt2, None, &dir, 1, Some(&ctx));
        assert_eq!((o.executed, o.interrupted), (0, 2));
        assert_eq!(token.reason(), Some(rayon::CancelReason::DeadlineExceeded));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_checkpoints_and_resumes_only_missing_points() {
        let dir = tmpdir("resume");
        let ckpt_path = dir.join("sweep.ckpt.jsonl");
        let points = vec![
            point(Scheme::seec(), 0.0),
            point(Scheme::seec(), 0.01),
            point(Scheme::mseec(), 0.0),
        ];
        // First run: capped at 2 points.
        let ckpt = Checkpoint::open(&ckpt_path).unwrap();
        let o1 = run_sweep(&points, &ckpt, Some(2), &dir);
        assert_eq!((o1.executed, o1.resumed, o1.deferred), (2, 0, 1));
        // Resume: only the missing point runs.
        let ckpt = Checkpoint::open(&ckpt_path).unwrap();
        assert_eq!(ckpt.done_count(), 2);
        let o2 = run_sweep(&points, &ckpt, None, &dir);
        assert_eq!((o2.executed, o2.resumed, o2.deferred), (1, 2, 0));
        // The resumed checkpoint holds the same row set as an uninterrupted
        // run of the same sweep.
        let uckpt = Checkpoint::open(&dir.join("uninterrupted.ckpt.jsonl")).unwrap();
        run_sweep(&points, &uckpt, None, &dir);
        let sorted = |c: &Checkpoint| {
            let mut rows: Vec<String> = c.rows().iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        let resumed = Checkpoint::open(&ckpt_path).unwrap();
        assert_eq!(sorted(&resumed), sorted(&uckpt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ok_rows_carry_the_fault_metrics() {
        let dir = tmpdir("metrics");
        let ckpt = Checkpoint::open(&dir.join("m.ckpt.jsonl")).unwrap();
        run_sweep(&[point(Scheme::seec(), 0.05)], &ckpt, None, &dir);
        let rows = ckpt.rows();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r["status"], "ok");
        assert!(r["avg_latency"].parse::<f64>().unwrap() > 0.0);
        assert!(
            r["retransmitted_flits"].parse::<u64>().unwrap() > 0,
            "5% corruption must force retransmissions: {r:?}"
        );
        // Tail-latency and recovery columns are always present; a healthy
        // run has nonzero percentiles and zero recoveries.
        let p50 = r["p50_latency"].parse::<u64>().unwrap();
        let p99 = r["p99_latency"].parse::<u64>().unwrap();
        assert!(p50 > 0 && p99 >= p50, "p50={p50} p99={p99}");
        assert_eq!(r["drain_recoveries"], "0");
        assert_eq!(r["e2e_retransmits"], "0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misarmed_recovery_is_skipped_with_a_reason() {
        // A drain threshold at/above the watchdog's panic threshold can
        // never fire before the runner escalates — the recovery certifier
        // refuses it and the sweep records a status row instead of running.
        let dir = tmpdir("recovery_uncert");
        let ckpt = Checkpoint::open(&dir.join("r.ckpt.jsonl")).unwrap();
        let mut p = point(Scheme::seec(), 0.0);
        p.recovery = RecoveryConfig::drain().with_stuck_threshold(1_000_000);
        let o = run_sweep(&[p], &ckpt, None, &dir);
        assert_eq!(o.failed, 0);
        let rows = ckpt.rows();
        assert_eq!(rows[0]["status"], "recovery-uncertified");
        assert!(rows[0]["reason"].contains("recovery"), "{rows:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rows_point_at_their_blackbox_dump() {
        // Pre-plant a dump file under the point's deterministic name; an
        // injected panic must then produce a failed row referencing it.
        let _guard = PANIC_KEY_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = tmpdir("blackbox_link");
        let ckpt_path = dir.join("b.ckpt.jsonl");
        let mut bad = point(Scheme::seec(), 0.0);
        bad.series = "blackbox-link-test";
        let dump = dir.join(format!("blackbox_{}.json", bad.key()));
        std::fs::write(&dump, "{\"schema\": \"noc-blackbox-v1\"}").unwrap();
        std::env::set_var("NOC_SWEEP_PANIC_KEY", "blackbox-link-test");
        let ckpt = Checkpoint::open(&ckpt_path).unwrap();
        let o = run_sweep(&[bad], &ckpt, None, &dir);
        std::env::remove_var("NOC_SWEEP_PANIC_KEY");
        assert_eq!(o.failed, 1);
        let rows = ckpt.rows();
        assert_eq!(rows[0]["status"], "failed");
        assert_eq!(rows[0]["blackbox"], dump.display().to_string());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unroutable_scenarios_become_status_rows_not_panics() {
        let dir = tmpdir("unroutable");
        let ckpt = Checkpoint::open(&dir.join("u.ckpt.jsonl")).unwrap();
        let mut p = point(Scheme::seec(), 0.0);
        // Sever corner node 0 entirely: unroutable.
        p.fault = FaultConfig::default().with_dead_links(vec![
            (NodeId(0), Direction::East),
            (NodeId(0), Direction::South),
        ]);
        let o = run_sweep(&[p], &ckpt, None, &dir);
        assert_eq!(o.failed, 0);
        let rows = ckpt.rows();
        assert_eq!(rows[0]["status"], "unroutable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn severed_escape_is_skipped_for_duato_schemes() {
        let dir = tmpdir("severed");
        let ckpt = Checkpoint::open(&dir.join("s.ckpt.jsonl")).unwrap();
        let mut p = point(Scheme::escape(), 0.0);
        p.fault = FaultConfig::default().with_dead_links(vec![(NodeId(1), Direction::East)]);
        let o = run_sweep(&[p], &ckpt, None, &dir);
        assert_eq!(o.failed, 0);
        assert_eq!(ckpt.rows()[0]["status"], "escape-severed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_point_is_recorded_as_failed_and_not_rerun() {
        // The injection hook is env-driven; isolate it in a child test by
        // matching a series tag no other test uses.
        let _guard = PANIC_KEY_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = tmpdir("panic");
        let ckpt_path = dir.join("p.ckpt.jsonl");
        let mut bad = point(Scheme::seec(), 0.0);
        bad.series = "panic-injection-test";
        let good = point(Scheme::mseec(), 0.0);
        std::env::set_var("NOC_SWEEP_PANIC_KEY", "panic-injection-test");
        let ckpt = Checkpoint::open(&ckpt_path).unwrap();
        let o = run_sweep(&[bad.clone(), good], &ckpt, None, &dir);
        std::env::remove_var("NOC_SWEEP_PANIC_KEY");
        assert_eq!(o.executed, 2);
        assert_eq!(o.failed, 1, "the injected panic must be recorded");
        let rows = Checkpoint::open(&ckpt_path).unwrap().rows();
        assert_eq!(rows.len(), 2, "the healthy point must still complete");
        let failed: Vec<_> = rows.iter().filter(|r| r["status"] == "failed").collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0]["reason"].contains("injected test panic"));
        // A resumed run re-executes nothing: the failure is checkpointed.
        let ckpt = Checkpoint::open(&ckpt_path).unwrap();
        let o2 = run_sweep(&[bad, point(Scheme::mseec(), 0.0)], &ckpt, None, &dir);
        assert_eq!((o2.executed, o2.resumed), (0, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
