//! Saturation-throughput search (Fig 9's metric).
//!
//! Standard `NoC` methodology: sweep the offered load; the network is
//! *saturated* once average latency exceeds a multiple of the zero-load
//! latency (we use 3×, a common knee definition) or the network stops
//! accepting the offered load. The saturation throughput is the accepted
//! rate at the last unsaturated point.

use crate::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;
use rayon::prelude::*;

/// One measured point of a latency-throughput curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    pub offered: f64,
    pub accepted: f64,
    pub avg_latency: f64,
}

/// Measures one point of a latency-throughput curve.
pub fn curve_point(
    k: u8,
    vcs: u8,
    scheme: Scheme,
    pattern: TrafficPattern,
    rate: f64,
    cycles: u64,
) -> CurvePoint {
    let s = run_synth(SynthSpec::new(k, vcs, scheme, pattern, rate).with_cycles(cycles));
    CurvePoint {
        offered: rate,
        accepted: s.throughput(k as usize * k as usize),
        avg_latency: s.avg_total_latency(),
    }
}

/// Sweeps `rates` in parallel and returns the measured curve.
pub fn latency_curve(
    k: u8,
    vcs: u8,
    scheme: Scheme,
    pattern: TrafficPattern,
    rates: &[f64],
    cycles: u64,
) -> Vec<CurvePoint> {
    rates
        .par_iter()
        .map(|&rate| curve_point(k, vcs, scheme, pattern, rate, cycles))
        .collect()
}

/// Finds the saturation throughput from a measured curve: the accepted rate
/// at the last point whose latency stays below `knee` × the zero-load
/// latency and whose acceptance tracks the offered load.
pub fn saturation_from_curve(curve: &[CurvePoint], knee: f64) -> f64 {
    assert!(!curve.is_empty());
    let zero_load = curve
        .iter()
        .find(|p| p.avg_latency > 0.0)
        .map(|p| p.avg_latency)
        .unwrap_or(1.0);
    let mut sat = 0.0_f64;
    for p in curve {
        let unsaturated = p.avg_latency > 0.0
            && p.avg_latency <= knee * zero_load
            && p.accepted >= 0.85 * p.offered;
        if unsaturated {
            sat = sat.max(p.accepted);
        }
    }
    // Fully saturated from the first point: report the best accepted rate.
    if sat == 0.0 {
        sat = curve.iter().map(|p| p.accepted).fold(0.0, f64::max);
    }
    sat
}

/// Convenience: sweep a default grid and return the saturation throughput.
pub fn find_saturation(
    k: u8,
    vcs: u8,
    scheme: Scheme,
    pattern: TrafficPattern,
    cycles: u64,
) -> f64 {
    let rates: Vec<f64> = (1..=14).map(|i| i as f64 * 0.02).collect();
    let curve = latency_curve(k, vcs, scheme, pattern, &rates, cycles);
    saturation_from_curve(&curve, 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(offered: f64, accepted: f64, lat: f64) -> CurvePoint {
        CurvePoint {
            offered,
            accepted,
            avg_latency: lat,
        }
    }

    #[test]
    fn knee_detection_on_synthetic_curve() {
        let curve = vec![
            pt(0.02, 0.02, 12.0),
            pt(0.06, 0.06, 14.0),
            pt(0.10, 0.10, 20.0),
            pt(0.14, 0.13, 80.0), // past the knee: latency exploded
            pt(0.18, 0.13, 300.0),
        ];
        let sat = saturation_from_curve(&curve, 3.0);
        assert!((sat - 0.10).abs() < 1e-9, "sat {sat}");
    }

    #[test]
    fn saturated_from_start_reports_best_accepted() {
        let curve = vec![pt(0.3, 0.05, 900.0), pt(0.5, 0.06, 1200.0)];
        let sat = saturation_from_curve(&curve, 3.0);
        assert!((sat - 0.06).abs() < 1e-9);
    }
}
