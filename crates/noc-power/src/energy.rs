//! Link / router energy model (Fig 11).
//!
//! Event-based: every counter in [`noc_sim::Stats`] maps to an energy cost
//! proportional to the bits toggled. Fig 11 plots *link* energy (average and
//! peak over any 1000-cycle window) normalized to West-first; the same
//! report also carries buffer energy for completeness.

use noc_sim::stats::{Stats, ACTIVITY_WINDOW};
use noc_types::NetConfig;
use serde::Serialize;

/// Energy per bit per link traversal (arbitrary units; only ratios matter).
const E_BIT_LINK: f64 = 1.0;
/// Energy per bit read+written through a VC buffer.
const E_BIT_BUFFER: f64 = 0.6;
/// SPIN probes are short control flits on the data links.
const PROBE_BITS: f64 = 64.0;
/// Seeker side-band width (§3.6: 10–16 bits; we charge the wide end).
const SEEKER_BITS: f64 = 16.0;
/// Lookahead side-band width (§3.6).
const LOOKAHEAD_BITS: f64 = 10.0;

/// Energy totals for one run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EnergyReport {
    /// Total data-link energy over the measurement phase.
    pub link_total: f64,
    /// Mean link energy per cycle.
    pub link_avg_per_cycle: f64,
    /// Peak link energy per cycle over the busiest 1000-cycle window.
    pub link_peak_per_cycle: f64,
    /// Side-band energy (seekers + lookaheads) — SEEC's overhead.
    pub sideband_total: f64,
    /// Buffer read/write energy (TFC bypasses credited).
    pub buffer_total: f64,
    /// Measurement-phase length.
    #[serde(skip)]
    cycles: f64,
}

impl EnergyReport {
    /// Average link+sideband energy per cycle — what Fig 11 normalizes.
    pub fn avg_metric(&self) -> f64 {
        self.link_avg_per_cycle + self.sideband_per_cycle()
    }

    fn sideband_per_cycle(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.sideband_total / self.cycles
        }
    }
}

/// Builds the energy report for a finished run.
pub fn link_energy(stats: &Stats, cfg: &NetConfig) -> EnergyReport {
    let cycles = stats.end_cycle.saturating_sub(stats.measure_start).max(1) as f64;
    let w = cfg.link_width_bits as f64;
    let link_total =
        stats.link_flit_hops as f64 * w * E_BIT_LINK + stats.probe_hops as f64 * PROBE_BITS;
    let sideband_total =
        stats.sideband_hops as f64 * SEEKER_BITS + stats.lookahead_hops as f64 * LOOKAHEAD_BITS;
    let reads_writes = (stats.buffer_reads + stats.buffer_writes) as f64;
    let bypassed = 2.0 * stats.tfc_bypasses as f64;
    let buffer_total = (reads_writes - bypassed).max(0.0) * w * E_BIT_BUFFER;
    let link_peak_per_cycle =
        stats.peak_window_link_hops as f64 * w * E_BIT_LINK / ACTIVITY_WINDOW as f64;
    EnergyReport {
        link_total,
        link_avg_per_cycle: link_total / cycles,
        link_peak_per_cycle,
        sideband_total,
        buffer_total,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hops: u64, probes: u64, sideband: u64) -> Stats {
        let mut s = Stats::default();
        s.link_flit_hops = hops;
        s.probe_hops = probes;
        s.sideband_hops = sideband;
        s.lookahead_hops = sideband / 4;
        s.measure_start = 0;
        s.end_cycle = 10_000;
        s.peak_window_link_hops = hops / 5;
        s
    }

    fn cfg() -> NetConfig {
        NetConfig::synth(8, 2)
    }

    #[test]
    fn link_energy_scales_with_hops() {
        let a = link_energy(&stats(1000, 0, 0), &cfg());
        let b = link_energy(&stats(2000, 0, 0), &cfg());
        assert!((b.link_total / a.link_total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probes_cost_half_a_flit() {
        let none = link_energy(&stats(1000, 0, 0), &cfg());
        let some = link_energy(&stats(1000, 1000, 0), &cfg());
        let delta = some.link_total - none.link_total;
        assert!((delta - 64_000.0).abs() < 1e-6);
    }

    #[test]
    fn seeker_sideband_is_cheap() {
        // §4.3: SEEC's overhead hovers below 1% — one seeker hop per cycle
        // against a 128-bit data network with meaningful utilization.
        let s = link_energy(&stats(100_000, 0, 10_000), &cfg());
        let overhead = s.sideband_total / s.link_total;
        assert!(overhead < 0.02, "sideband overhead {overhead}");
    }

    #[test]
    fn tfc_bypasses_reduce_buffer_energy() {
        let mut base = stats(1000, 0, 0);
        base.buffer_reads = 500;
        base.buffer_writes = 500;
        let plain = link_energy(&base, &cfg());
        base.tfc_bypasses = 100;
        let tfc = link_energy(&base, &cfg());
        assert!(tfc.buffer_total < plain.buffer_total);
    }
}
