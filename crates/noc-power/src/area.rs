//! Router area model (Fig 7).
//!
//! Per-scheme router configurations follow §4.2: the *minimum* buffering
//! each scheme needs for correctness — Escape VC 7 VCs (one per `VNet` plus a
//! shared adaptive VC), West-first/TFC/SPIN/SWAP 6 VCs (one per `VNet`), DRAIN
//! and SEEC 1 VC. mSEEC adds no router complexity over SEEC (footnote 3).

use noc_types::{NetConfig, SchemeKind, NUM_PORTS};
use serde::Serialize;

/// Area units: one unit ≈ one bit-cell of SRAM-based buffering; logic
/// components are expressed in the same unit via published relative sizes.
const FLIT_BITS: f64 = 128.0;
/// Crossbar area coefficient (per bit² of the 5×5 switch).
const XBAR_COEF: f64 = 0.025;
/// Per-VC allocator/bookkeeping logic.
const ALLOC_PER_VC: f64 = 90.0;
/// Fixed switch-allocator + pipeline + output-unit logic.
const FIXED_LOGIC: f64 = 1700.0;
/// SEEC extras (§3.9–3.10): seeker generator, prev-FF-origin tracker,
/// 9-bit parallel comparators per VC, bypass muxes, lookahead logic.
const SEEC_EXTRA_FIXED: f64 = 260.0;
const SEEC_EXTRA_PER_VC: f64 = 12.0;
/// SPIN extras: per-VC timeout counters, probe FSM, path table.
const SPIN_EXTRA_FIXED: f64 = 420.0;
const SPIN_EXTRA_PER_VC: f64 = 30.0;
/// SWAP extras: swap FSM and reverse muxes.
const SWAP_EXTRA_FIXED: f64 = 300.0;
/// DRAIN extras: drain FSM, timeout counter, U-turn crossbar inputs.
const DRAIN_EXTRA_FIXED: f64 = 280.0;
/// TFC extras: token tracking and bypass latches.
const TFC_EXTRA_FIXED: f64 = 350.0;
/// `MinBD`: 4-flit side buffer + permutation/golden logic, no VC buffers.
const MINBD_SIDE_FLITS: f64 = 4.0;
const DEFLECT_LOGIC: f64 = 900.0;

/// Component-level router area.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct AreaBreakdown {
    pub scheme: SchemeKind,
    /// VCs per input port this scheme needs for correctness.
    pub vcs_per_port: usize,
    pub buffers: f64,
    pub crossbar: f64,
    pub allocators: f64,
    /// Scheme-specific additions (seeker logic, probes, FSMs, side buffer).
    pub extras: f64,
}

impl AreaBreakdown {
    pub fn total(&self) -> f64 {
        self.buffers + self.crossbar + self.allocators + self.extras
    }
}

/// The minimum VC count per input port each scheme needs to be correct on a
/// 6-message-class protocol (§4.2).
pub fn min_vcs_for_correctness(scheme: SchemeKind) -> usize {
    match scheme {
        SchemeKind::EscapeVc => 7,
        SchemeKind::None | SchemeKind::Tfc | SchemeKind::Spin | SchemeKind::Swap => 6,
        SchemeKind::Drain | SchemeKind::Seec | SchemeKind::MSeec => 1,
        SchemeKind::MinBd | SchemeKind::Chipper => 0,
    }
}

/// Router area for `scheme` with `vcs_per_port` VCs of `vc_depth` flits at
/// every input port. Use [`min_vcs_for_correctness`] for the Fig 7
/// comparison, or the experiment's actual VC count for iso-hardware studies.
pub fn router_area_with(scheme: SchemeKind, vcs_per_port: usize, vc_depth: usize) -> AreaBreakdown {
    let deflection = matches!(scheme, SchemeKind::MinBd | SchemeKind::Chipper);
    let buffers = if deflection {
        if scheme == SchemeKind::MinBd {
            MINBD_SIDE_FLITS * FLIT_BITS
        } else {
            0.0
        }
    } else {
        NUM_PORTS as f64 * vcs_per_port as f64 * vc_depth as f64 * FLIT_BITS
    };
    let crossbar = (NUM_PORTS as f64 * FLIT_BITS).powi(2) * XBAR_COEF / NUM_PORTS as f64;
    let allocators = if deflection {
        DEFLECT_LOGIC
    } else {
        FIXED_LOGIC + ALLOC_PER_VC * NUM_PORTS as f64 * vcs_per_port as f64
    };
    let extras = match scheme {
        SchemeKind::Seec | SchemeKind::MSeec => {
            SEEC_EXTRA_FIXED + SEEC_EXTRA_PER_VC * NUM_PORTS as f64 * vcs_per_port as f64
        }
        SchemeKind::Spin => {
            SPIN_EXTRA_FIXED + SPIN_EXTRA_PER_VC * NUM_PORTS as f64 * vcs_per_port as f64
        }
        SchemeKind::Swap => SWAP_EXTRA_FIXED,
        SchemeKind::Drain => DRAIN_EXTRA_FIXED,
        SchemeKind::Tfc => TFC_EXTRA_FIXED,
        _ => 0.0,
    };
    AreaBreakdown {
        scheme,
        vcs_per_port,
        buffers,
        crossbar,
        allocators,
        extras,
    }
}

/// Router area at the scheme's minimum correct configuration, depth from
/// `cfg` (5-flit VCT).
pub fn router_area(scheme: SchemeKind, cfg: &NetConfig) -> AreaBreakdown {
    router_area_with(
        scheme,
        min_vcs_for_correctness(scheme),
        cfg.vc_depth as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetConfig {
        NetConfig::full_system(8, 6, 1)
    }

    #[test]
    fn seec_saves_roughly_three_quarters_vs_escape_vc() {
        // The paper: SEEC reduces router area by ~73% vs Escape VC and ~70%
        // vs SPIN/SWAP.
        let seec = router_area(SchemeKind::Seec, &cfg()).total();
        let esc = router_area(SchemeKind::EscapeVc, &cfg()).total();
        let spin = router_area(SchemeKind::Spin, &cfg()).total();
        let swap = router_area(SchemeKind::Swap, &cfg()).total();
        let r_esc = 1.0 - seec / esc;
        let r_spin = 1.0 - seec / spin;
        let r_swap = 1.0 - seec / swap;
        assert!((0.68..0.78).contains(&r_esc), "esc saving {r_esc}");
        assert!((0.63..0.75).contains(&r_spin), "spin saving {r_spin}");
        assert!((0.63..0.75).contains(&r_swap), "swap saving {r_swap}");
    }

    #[test]
    fn drain_and_seec_are_comparable() {
        let seec = router_area(SchemeKind::Seec, &cfg()).total();
        let drain = router_area(SchemeKind::Drain, &cfg()).total();
        let ratio = seec / drain;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn buffers_dominate_multi_vnet_schemes() {
        let esc = router_area(SchemeKind::EscapeVc, &cfg());
        assert!(esc.buffers > 0.6 * esc.total());
    }

    #[test]
    fn mseec_adds_nothing_over_seec() {
        let a = router_area(SchemeKind::Seec, &cfg());
        let b = router_area(SchemeKind::MSeec, &cfg());
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn minbd_is_smaller_than_any_vc_router() {
        let minbd = router_area(SchemeKind::MinBd, &cfg()).total();
        let seec = router_area(SchemeKind::Seec, &cfg()).total();
        assert!(minbd < seec);
        let chipper = router_area(SchemeKind::Chipper, &cfg()).total();
        assert!(chipper < minbd);
    }
}
