//! Analytic router-area and link/router-energy models.
//!
//! The paper synthesized `OpenSMART` routers on `FreePDK15` and reported
//! *relative* area (Fig 7) and link energy (Fig 11). We reproduce the same
//! relative quantities with a component-level analytic model: absolute
//! numbers are in arbitrary units calibrated so the component *ratios* match
//! published router breakdowns (input buffers dominate; crossbar ∝ width²;
//! allocators grow with VC count). DESIGN.md records this substitution.

#![forbid(unsafe_code)]

pub mod area;
pub mod energy;

pub use area::{router_area, AreaBreakdown};
pub use energy::{link_energy, EnergyReport};
