//! End-to-end witness replay: the model checker's abstract deadlock trace
//! for minimal-adaptive routing must correspond to a *concrete* deadlock
//! in the cycle-accurate simulator.
//!
//! The abstract wedge is a population, not a schedule: the trace tells us
//! which packets (source → destination pairs) close the cyclic wait on
//! the 2x2 mesh. The simulator's arbiters are free to interleave the
//! packets differently, and roughly half the seeds route the adaptive
//! choices away from the wedge orientation — so the replay offers the
//! population under many seeds and requires that *some* seed wedges the
//! real engine: packets still buffered, zero movement for thousands of
//! cycles, no deliveries.

use noc_model::{check, ModelConfig, Scheme, Verdict};
use noc_sim::workload::IdleWorkload;
use noc_sim::{NoMechanism, Sim};
use noc_types::{BaseRouting, MessageClass, NetConfig, NodeId, Packet, PacketId, RoutingAlgo};

/// Cycles of zero movement after which the concrete network is wedged.
const WEDGE_QUIESCENCE: u64 = 2_000;
/// Total cycles each seed is given to either wedge or drain.
const HORIZON: u64 = 10_000;

fn wedges_with_seed(population: &[(NodeId, NodeId)], seed: u64) -> bool {
    let cfg = NetConfig::synth(2, 1)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(seed);
    let mut sim = Sim::new(cfg, Box::new(IdleWorkload), Box::new(NoMechanism));
    for (i, &(src, dest)) in population.iter().enumerate() {
        sim.net.nics[src.idx()].enqueue(Packet {
            id: PacketId(i as u64 + 1),
            src,
            dest,
            class: MessageClass(0),
            len_flits: 1,
            birth: 0,
            measured: false,
        });
    }
    for _ in 0..HORIZON {
        sim.step();
        if sim.net.flits_in_network() > 0 && sim.net.quiescent_for() > WEDGE_QUIESCENCE {
            return true;
        }
    }
    false
}

#[test]
fn adaptive_witness_replays_to_a_concrete_deadlock() {
    let r = check(&ModelConfig::small(Scheme::Adaptive));
    let Verdict::DeadlockReachable { trace } = &r.verdict else {
        panic!(
            "model checker must find the adaptive wedge, got {:?}",
            r.verdict
        );
    };
    let population = trace.packets();
    assert_eq!(population.len(), 4, "the 2x2 ring wedge takes four packets");

    let mut wedged = 0usize;
    let seeds = 0..64u64;
    let total = seeds.end;
    for seed in seeds {
        if wedges_with_seed(&population, seed) {
            wedged += 1;
        }
    }
    // Empirically ~1/8 of seeds close the wedge (the adaptive arbiter must
    // pick the cyclic orientation at each of the four routers); anything
    // nonzero proves the abstract witness is concretely realizable.
    assert!(
        wedged > 0,
        "no seed out of {total} wedged the concrete simulator on the model's witness:\n{}",
        trace.render()
    );
}

#[test]
fn xy_never_wedges_on_the_same_population() {
    // Control: the same four-packet population under XY routing must drain
    // for every seed — the wedge is a property of the adaptive cycle, not
    // of the traffic.
    let r = check(&ModelConfig::small(Scheme::Adaptive));
    let Verdict::DeadlockReachable { trace } = &r.verdict else {
        panic!("expected the adaptive wedge");
    };
    let population = trace.packets();
    for seed in 0..16u64 {
        let cfg = NetConfig::synth(2, 1)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
            .with_seed(seed);
        let mut sim = Sim::new(cfg, Box::new(IdleWorkload), Box::new(NoMechanism));
        for (i, &(src, dest)) in population.iter().enumerate() {
            sim.net.nics[src.idx()].enqueue(Packet {
                id: PacketId(i as u64 + 1),
                src,
                dest,
                class: MessageClass(0),
                len_flits: 1,
                birth: 0,
                measured: false,
            });
        }
        for _ in 0..HORIZON {
            sim.step();
        }
        assert_eq!(
            sim.net.flits_in_network(),
            0,
            "XY must drain the wedge population (seed {seed})"
        );
    }
}
