//! The differential harness: cross-certifies the CDG verdicts of
//! `noc-verify` against exhaustive reachability on small meshes.
//!
//! For every routing algorithm in the shared expectation matrix
//! ([`noc_verify::matrix::all_configs`]) the harness shrinks the
//! configuration to the model checker's small mesh, runs both analyzers on
//! it, and applies [`noc_verify::cross_check`]'s soundness relation:
//! certified rows must have no reachable wedge, `Deadlockable` rows must
//! yield a concrete reachable witness, and a livelock lasso is always a
//! disagreement. Any disagreement is a bug in one of the two tools (or an
//! under-provisioned bound) and fails CI.
//!
//! Recovery-matrix rows are out of scope: their verdicts are about the
//! *recovery channel's* timing contract, which the untimed abstract model
//! cannot observe.

use crate::explore::check;
use crate::scheme::Scheme;
use crate::state::ModelConfig;
use noc_types::NetConfig;
use noc_verify::{cross_check, ReachVerdict};
use std::collections::HashSet;

/// One scheme's differential result.
#[derive(Debug)]
pub struct DiffRow {
    /// The abstract scheme (one per distinct routing algorithm in the
    /// matrix).
    pub scheme: Scheme,
    /// The model configuration explored.
    pub model: ModelConfig,
    /// Whether the CDG certifier certified the shrunk configuration.
    pub cdg_certified: bool,
    /// The model checker's reachability verdict.
    pub reach: ReachVerdict,
    /// Reachable states explored.
    pub states: usize,
    /// `Some(description)` when the two analyzers disagree.
    pub disagreement: Option<String>,
}

/// The full differential run.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// One row per distinct routing algorithm in the shared matrix.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Number of rows whose analyzers disagree. Zero is the CI gate.
    pub fn disagreements(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.disagreement.is_some())
            .count()
    }
}

/// Runs the differential cross-certification over every distinct routing
/// algorithm in the shared expectation matrix.
pub fn run_differential() -> DiffReport {
    let mut seen: HashSet<Scheme> = HashSet::new();
    let mut report = DiffReport::default();
    for row in noc_verify::matrix::all_configs() {
        let scheme = Scheme::from_routing(row.cfg.routing);
        if !seen.insert(scheme) {
            continue;
        }
        let model = ModelConfig::small(scheme);
        let result = check(&model);
        let reach = result.reach_verdict();
        // Shrink the CDG side to the model's mesh so both analyzers look
        // at the same configuration.
        let small = NetConfig::synth(2, model.vcs).with_routing(row.cfg.routing);
        let cdg = noc_verify::certify(&small).routing;
        let disagreement = cross_check(&cdg, reach).err();
        report.rows.push(DiffRow {
            scheme,
            model,
            cdg_certified: cdg.certified(),
            reach,
            states: result.states,
            disagreement,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_reports_zero_disagreements() {
        let report = run_differential();
        assert_eq!(report.rows.len(), 5, "one row per distinct routing algo");
        for row in &report.rows {
            assert!(
                row.disagreement.is_none(),
                "{:?}: cdg_certified={} reach={:?}: {}",
                row.scheme,
                row.cdg_certified,
                row.reach,
                row.disagreement.as_deref().unwrap_or_default()
            );
        }
    }

    #[test]
    fn differential_covers_both_verdict_polarities() {
        let report = run_differential();
        assert!(report.rows.iter().any(|r| r.cdg_certified));
        assert!(report.rows.iter().any(|r| !r.cdg_certified));
    }
}
