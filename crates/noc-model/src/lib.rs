//! `noc-model`: an exhaustive bounded model checker for the repo's
//! deadlock-freedom claims.
//!
//! The CDG certifier (`noc-verify`) proves deadlock freedom *structurally*
//! — acyclicity of a channel-dependency graph — and its `Deadlockable`
//! verdicts are only existence proofs of a cyclic wait that *could* close.
//! This crate attacks the same claims from the opposite side: it
//! enumerates every reachable buffer configuration of a small mesh
//! (2x2/3x3, 1-flit packets, a bounded in-flight population) and decides
//! by exhaustion whether a wedged state — packets in flight, no enabled
//! move — is reachable at all.
//!
//! Three verdicts per (scheme, configuration):
//!
//! * **deadlock-free** — no reachable wedge within the bound;
//! * **deadlock-reachable** — with a minimal concrete trace (BFS depth),
//!   replayable through the cycle-accurate simulator (`tests/replay.rs`
//!   in `noc-model`, and the `model_check` binary);
//! * **livelock-suspect** — a reachable lasso over movement-only
//!   transitions (packets circulate forever without ejecting).
//!
//! The two analyzers are run differentially ([`diff::run_differential`]):
//! every configuration the CDG certifies must have zero reachable wedges,
//! and every `Deadlockable` verdict must be backed by a concrete reachable
//! witness. A disagreement in either direction is a bug in one of the two
//! tools and fails CI.
//!
//! ## Soundness boundary
//!
//! The abstract transition system (see [`explore`]) fires one move at a
//! time and lets *any* enabled packet move — an over-approximation of the
//! synchronous simulator under every arbiter. Consequently
//! "deadlock-free" here is sound for the concrete engine **up to the
//! stated bounds**: mesh size, 1-flit packets, the in-flight cap, and the
//! sink-consumption assumption (ejection always succeeds; protocol-layer
//! refusal is `noc-verify`'s protocol matrix's concern). The SEEC rescue
//! transition takes the paper's guaranteed-ejection property as an axiom
//! (discharged by `seec`'s own tests). See DESIGN.md §12.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod diff;
pub mod explore;
pub mod scheme;
pub mod state;
pub mod symmetry;

pub use diff::{run_differential, DiffReport, DiffRow};
pub use explore::{check, CheckResult, Step, Trace, Verdict};
pub use scheme::{Scheme, TargetClass};
pub use state::{Interner, ModelConfig};
