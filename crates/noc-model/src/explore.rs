//! The explicit-state explorer: BFS over the reachable abstract states,
//! wedge detection, minimal-trace extraction and lasso (livelock) search.
//!
//! ## Transition system
//!
//! From a state (see `state` for the encoding) the enabled transitions
//! are:
//!
//! * **Inject** — while fewer than `max_inflight` packets are in flight, a
//!   fresh packet with any destination may appear in any free local-port
//!   VC of any other node (the injection-abstraction frontier);
//! * **Hop** — a buffered packet may move to a free VC of the matching
//!   class on the input port its move arrives at, for every (direction,
//!   class) pair its scheme's relation offers;
//! * **Eject** — a packet buffered at its destination leaves the network
//!   (the sink-consumption assumption shared with the CDG certifier);
//! * **Rescue** (SEEC only) — a *blocked* packet (no hop or eject
//!   enabled) is upgraded and delivered out-of-band.
//!
//! One transition fires at a time. This interleaving semantics
//! over-approximates the synchronous simulator: any compound cycle the
//! simulator performs is a sequence of these single moves, so every
//! concretely reachable buffer configuration is abstractly reachable, and
//! "no reachable wedge" transfers from the abstract system to the
//! simulator under every arbiter.
//!
//! ## Verdicts
//!
//! A **wedge** is a state with at least one packet in flight and no
//! enabled hop/eject/rescue (injection is excluded: adding packets never
//! unblocks one). BFS finds a wedge at minimal depth, and the parent
//! links yield a minimal concrete trace, replayable against `noc-sim`.
//! If no wedge is reachable, a second pass searches the hop-only
//! transition graph for a cycle — a *lasso* along which packets move
//! forever without any ejecting. Minimal-routing schemes cannot lasso
//! (every hop strictly decreases the packet's remaining distance); the
//! `RandomWalk` validation scheme proves the detector is not vacuous.

use crate::scheme::TargetClass;
use crate::state::{encode_dest, slot_dest, Interner, ModelConfig, LOCAL_PORT};
use crate::symmetry::{canonicalize, transforms_for, Transform};
use noc_types::{Direction, NodeId};
use std::collections::VecDeque;

/// One atomic transition, in concrete (replayable) coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// A packet destined for `dest` appears in `node`'s local-port VC `vc`.
    Inject {
        /// Source node (where the packet enters).
        node: NodeId,
        /// Local-port VC it lands in.
        vc: usize,
        /// Destination node.
        dest: NodeId,
    },
    /// The packet buffered at (`node`, `port`, `vc`) hops `dir` into the
    /// neighbour's VC `to_vc` (on the input port facing back).
    Hop {
        /// Node the packet currently occupies.
        node: NodeId,
        /// Input port (direction index; 4 = local).
        port: usize,
        /// VC within the port.
        vc: usize,
        /// Direction of the hop.
        dir: Direction,
        /// Target VC at the downstream input port.
        to_vc: usize,
    },
    /// The packet buffered at (`node`, `port`, `vc`) is consumed at its
    /// destination.
    Eject {
        /// Destination node.
        node: NodeId,
        /// Input port it is consumed from.
        port: usize,
        /// VC within the port.
        vc: usize,
    },
    /// SEEC rescue: the blocked packet at (`node`, `port`, `vc`) is
    /// upgraded to Free Flow and delivered out-of-band.
    Rescue {
        /// Node the packet occupies when rescued.
        node: NodeId,
        /// Input port.
        port: usize,
        /// VC within the port.
        vc: usize,
    },
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Inject { node, vc, dest } => {
                write!(f, "inject n{}→n{} (local vc{vc})", node.0, dest.0)
            }
            Step::Hop {
                node,
                port,
                vc,
                dir,
                to_vc,
            } => write!(f, "hop n{}[p{port},vc{vc}] {dir} → vc{to_vc}", node.0),
            Step::Eject { node, port, vc } => write!(f, "eject n{}[p{port},vc{vc}]", node.0),
            Step::Rescue { node, port, vc } => write!(f, "rescue n{}[p{port},vc{vc}]", node.0),
        }
    }
}

/// A minimal concrete transition sequence from the empty network to a
/// wedge.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Trace {
    /// The (source, destination) of every packet the trace injects, in
    /// injection order — the population a concrete replay enqueues.
    pub fn packets(&self) -> Vec<(NodeId, NodeId)> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Inject { node, dest, .. } => Some((*node, *dest)),
                _ => None,
            })
            .collect()
    }

    /// Human-readable rendering, one step per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            s.push_str(&format!("  {i:>2}. {step}\n"));
        }
        s
    }
}

/// Outcome of one bounded check.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// No reachable state wedges within the in-flight bound.
    DeadlockFree,
    /// A wedge is reachable; `trace` is a minimal-length witness.
    DeadlockReachable {
        /// Minimal concrete trace from the empty network to the wedge.
        trace: Trace,
    },
    /// Packets can circulate forever without ejecting.
    LivelockSuspect {
        /// Number of reachable states on hop-only cycles.
        states_on_cycles: usize,
    },
}

/// Result of [`check`].
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// The problem checked.
    pub config: ModelConfig,
    /// Reachable (canonical) states explored.
    pub states: usize,
    /// Transitions fired during exploration.
    pub transitions: u64,
    /// The verdict.
    pub verdict: Verdict,
}

impl CheckResult {
    /// The cross-check verdict consumed by `noc-verify`'s matrix API.
    pub fn reach_verdict(&self) -> noc_verify::ReachVerdict {
        match self.verdict {
            Verdict::DeadlockFree => noc_verify::ReachVerdict::NoReachableWedge,
            Verdict::DeadlockReachable { .. } => noc_verify::ReachVerdict::WedgeReachable,
            Verdict::LivelockSuspect { .. } => noc_verify::ReachVerdict::LivelockSuspect,
        }
    }

    /// One-line summary for tables.
    pub fn summary(&self) -> String {
        let verdict = match &self.verdict {
            Verdict::DeadlockFree => "deadlock-free (bounded-exhaustive)".to_string(),
            Verdict::DeadlockReachable { trace } => {
                format!("DEADLOCK reachable in {} steps", trace.steps.len())
            }
            Verdict::LivelockSuspect { states_on_cycles } => {
                format!("LIVELOCK suspect ({states_on_cycles} states on hop cycles)")
            }
        };
        format!(
            "{:<10} {:<32} {:>9} states  {}",
            self.config.scheme.label(),
            self.config.describe(),
            self.states,
            verdict
        )
    }
}

/// Exhaustively explores `cfg`'s reachable states and renders a verdict.
pub fn check(cfg: &ModelConfig) -> CheckResult {
    let explored = explore(*cfg, /* track_parents = */ !cfg.symmetry);
    let mut transitions = explored.transitions;
    let mut states = explored.interner.len();

    if explored.wedge.is_some() {
        // Extract the trace from a symmetry-free run: canonicalized parent
        // states are only orbit representatives, so their steps are not
        // directly replayable. The symmetry-free space is the one the
        // trace must live in anyway; BFS keeps it minimal.
        let concrete = if cfg.symmetry {
            let mut flat = *cfg;
            flat.symmetry = false;
            let e = explore(flat, true);
            transitions += e.transitions;
            states = states.max(e.interner.len());
            e
        } else {
            explored
        };
        let wedge = concrete
            .wedge
            .expect("symmetry-free rerun must reach the same wedge set");
        let trace = extract_trace(&concrete, wedge);
        return CheckResult {
            config: *cfg,
            states,
            transitions,
            verdict: Verdict::DeadlockReachable { trace },
        };
    }

    // No wedge: scan the hop-only transition graph for a lasso.
    let states_on_cycles = lasso_states(&explored, *cfg);
    let verdict = if states_on_cycles > 0 {
        Verdict::LivelockSuspect { states_on_cycles }
    } else {
        Verdict::DeadlockFree
    };
    CheckResult {
        config: *cfg,
        states,
        transitions,
        verdict,
    }
}

struct Explored {
    interner: Interner,
    /// Parent id + step that first reached each state (when tracked).
    parents: Vec<Option<(u32, Step)>>,
    transforms: Vec<Transform>,
    transitions: u64,
    wedge: Option<u32>,
}

/// Enumerates the hop/eject/rescue successors of `state`; returns `true`
/// when the state is a wedge. `emit` receives each (step, successor).
fn progress_successors(
    cfg: ModelConfig,
    state: &[u8],
    scratch_moves: &mut Vec<(Direction, TargetClass)>,
    mut emit: impl FnMut(Step, Vec<u8>),
) -> bool {
    let vcs = cfg.vcs as usize;
    let mut inflight = 0usize;
    let mut any_progress = false;
    let mut blocked: Vec<usize> = Vec::new();

    for (slot, &byte) in state.iter().enumerate() {
        let Some(dest) = slot_dest(byte) else {
            continue;
        };
        inflight += 1;
        let (node, port, vc) = cfg.slot_fields(slot);
        let at = cfg.coord(node);
        let dest_coord = cfg.coord(dest);

        if node == dest {
            any_progress = true;
            let mut next = state.to_vec();
            next[slot] = 0;
            emit(
                Step::Eject {
                    node: NodeId(node as u16),
                    port,
                    vc,
                },
                next,
            );
            continue;
        }

        let in_escape = cfg.is_escape_vc(vc);
        cfg.scheme
            .legal_moves(at, dest_coord, cfg.cols, cfg.rows, in_escape, scratch_moves);
        let mut moved = false;
        // Drain into a local buffer: `legal_moves` reuses the scratch vec.
        let moves: Vec<(Direction, TargetClass)> = scratch_moves.clone();
        for (dir, class) in moves {
            let Some(nb) = dir.step(at, cfg.cols, cfg.rows) else {
                continue;
            };
            let nb_node = nb.to_node(cfg.cols).idx();
            let in_port = dir.opposite().index();
            let vc_range: std::ops::Range<usize> = match class {
                TargetClass::Normal => {
                    if cfg.scheme.has_escape() {
                        0..vcs - 1
                    } else {
                        0..vcs
                    }
                }
                TargetClass::Escape => vcs - 1..vcs,
            };
            for to_vc in vc_range {
                let target = cfg.slot(nb_node, in_port, to_vc);
                if state[target] != 0 {
                    continue;
                }
                moved = true;
                any_progress = true;
                let mut next = state.to_vec();
                next[slot] = 0;
                next[target] = encode_dest(dest);
                emit(
                    Step::Hop {
                        node: NodeId(node as u16),
                        port,
                        vc,
                        dir,
                        to_vc,
                    },
                    next,
                );
            }
        }
        if !moved {
            blocked.push(slot);
        }
    }

    if cfg.scheme.has_rescue() {
        for slot in blocked {
            any_progress = true;
            let (node, port, vc) = cfg.slot_fields(slot);
            let mut next = state.to_vec();
            next[slot] = 0;
            emit(
                Step::Rescue {
                    node: NodeId(node as u16),
                    port,
                    vc,
                },
                next,
            );
        }
    }

    inflight > 0 && !any_progress
}

/// Enumerates injection successors (never part of the wedge predicate).
fn inject_successors(cfg: ModelConfig, state: &[u8], mut emit: impl FnMut(Step, Vec<u8>)) {
    let inflight = state.iter().filter(|&&b| b != 0).count();
    if inflight >= cfg.max_inflight as usize {
        return;
    }
    let vcs = cfg.vcs as usize;
    for node in 0..cfg.nodes() {
        for vc in 0..vcs {
            let slot = cfg.slot(node, LOCAL_PORT, vc);
            if state[slot] != 0 {
                continue;
            }
            for dest in 0..cfg.nodes() {
                if dest == node {
                    continue;
                }
                let mut next = state.to_vec();
                next[slot] = encode_dest(dest);
                emit(
                    Step::Inject {
                        node: NodeId(node as u16),
                        vc,
                        dest: NodeId(dest as u16),
                    },
                    next,
                );
            }
        }
    }
}

fn explore(cfg: ModelConfig, track_parents: bool) -> Explored {
    let transforms = if cfg.symmetry {
        transforms_for(cfg)
    } else {
        Vec::new()
    };
    let mut interner = Interner::default();
    let mut parents: Vec<Option<(u32, Step)>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut transitions = 0u64;
    let mut wedge = None;
    let mut scratch = vec![0u8; cfg.slots()];
    let mut scratch_moves = Vec::new();

    let empty = vec![0u8; cfg.slots()];
    let (root, _) = interner.intern(&empty);
    if track_parents {
        parents.push(None);
    }
    queue.push_back(root);

    'bfs: while let Some(id) = queue.pop_front() {
        let state = interner.get(id).to_vec();
        // Collect successors first: the interner cannot be borrowed while
        // the state slice is.
        let mut succs: Vec<(Step, Vec<u8>)> = Vec::new();
        let is_wedge = progress_successors(cfg, &state, &mut scratch_moves, |step, next| {
            succs.push((step, next));
        });
        if is_wedge {
            wedge = Some(id);
            break 'bfs;
        }
        inject_successors(cfg, &state, |step, next| succs.push((step, next)));

        for (step, mut next) in succs {
            transitions += 1;
            if cfg.symmetry {
                canonicalize(&transforms, &mut next, &mut scratch);
            }
            let (sid, fresh) = interner.intern(&next);
            if fresh {
                if track_parents {
                    parents.push(Some((id, step)));
                }
                queue.push_back(sid);
            }
        }
    }

    Explored {
        interner,
        parents,
        transforms,
        transitions,
        wedge,
    }
}

fn extract_trace(e: &Explored, wedge: u32) -> Trace {
    let mut steps = Vec::new();
    let mut cur = wedge;
    while let Some((parent, step)) = e.parents[cur as usize] {
        steps.push(step);
        cur = parent;
    }
    steps.reverse();
    Trace { steps }
}

/// Counts reachable states lying on hop-only cycles (lassos). Iterative
/// three-colour DFS over the hop edges of the explored graph; hop
/// successors are recomputed and re-canonicalized, so the scan works on
/// the quotient graph too (a quotient cycle lifts to a real lasso because
/// the symmetry group is finite).
fn lasso_states(e: &Explored, cfg: ModelConfig) -> usize {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let n = e.interner.len();
    let mut colour = vec![Colour::White; n];
    let mut on_cycle = vec![false; n];
    let mut scratch = vec![0u8; cfg.slots()];
    let mut scratch_moves = Vec::new();

    let hop_succs = |id: u32, scratch: &mut Vec<u8>, moves: &mut Vec<_>| -> Vec<u32> {
        let state = e.interner.get(id).to_vec();
        let mut out = Vec::new();
        progress_successors(cfg, &state, moves, |step, mut next| {
            if matches!(step, Step::Hop { .. }) {
                if cfg.symmetry {
                    canonicalize(&e.transforms, &mut next, scratch);
                }
                // Hop successors of explored states are themselves
                // explored (BFS ran to fixpoint when no wedge exists).
                if let Some(&sid) = lookup(&e.interner, &next) {
                    out.push(sid);
                }
            }
        });
        out
    };

    for root in 0..n as u32 {
        if colour[root as usize] != Colour::White {
            continue;
        }
        // Frame: (node, successors, next index).
        let mut stack: Vec<(u32, Vec<u32>, usize)> = Vec::new();
        colour[root as usize] = Colour::Grey;
        let succs = hop_succs(root, &mut scratch, &mut scratch_moves);
        stack.push((root, succs, 0));
        while let Some((v, succs, pos)) = stack.last_mut() {
            if let Some(&w) = succs.get(*pos) {
                *pos += 1;
                match colour[w as usize] {
                    Colour::White => {
                        colour[w as usize] = Colour::Grey;
                        let s = hop_succs(w, &mut scratch, &mut scratch_moves);
                        stack.push((w, s, 0));
                    }
                    Colour::Grey => {
                        // Back edge: everything grey from w up the stack is
                        // on a cycle.
                        on_cycle[w as usize] = true;
                        for (u, _, _) in stack.iter().rev() {
                            on_cycle[*u as usize] = true;
                            if *u == w {
                                break;
                            }
                        }
                    }
                    Colour::Black => {}
                }
            } else {
                colour[*v as usize] = Colour::Black;
                stack.pop();
            }
        }
    }
    on_cycle.iter().filter(|&&b| b).count()
}

/// Borrow-friendly lookup into the interner without mutating it.
fn lookup<'a>(i: &'a Interner, state: &[u8]) -> Option<&'a u32> {
    i.lookup(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    fn small(scheme: Scheme) -> ModelConfig {
        ModelConfig::small(scheme)
    }

    #[test]
    fn certified_schemes_are_wedge_free_on_2x2() {
        for scheme in [Scheme::Xy, Scheme::WestFirst, Scheme::Tfc] {
            let r = check(&small(scheme));
            assert!(
                matches!(r.verdict, Verdict::DeadlockFree),
                "{scheme:?}: {:?}",
                r.verdict
            );
            assert!(r.states > 1, "{scheme:?} explored {} states", r.states);
        }
    }

    #[test]
    fn escape_vc_is_wedge_free_on_2x2() {
        let r = check(&small(Scheme::EscapeVc));
        assert!(
            matches!(r.verdict, Verdict::DeadlockFree),
            "{:?}",
            r.verdict
        );
    }

    #[test]
    fn seec_rescue_eliminates_the_adaptive_wedge() {
        let r = check(&small(Scheme::Seec));
        assert!(
            matches!(r.verdict, Verdict::DeadlockFree),
            "{:?}",
            r.verdict
        );
    }

    #[test]
    fn adaptive_and_oblivious_wedge_on_2x2_with_minimal_traces() {
        for scheme in [Scheme::Adaptive, Scheme::Oblivious] {
            let r = check(&small(scheme));
            let Verdict::DeadlockReachable { trace } = &r.verdict else {
                panic!("{scheme:?}: expected a wedge, got {:?}", r.verdict);
            };
            // The canonical 2x2 ring wedge: four packets, one hop each.
            assert_eq!(trace.packets().len(), 4, "{scheme:?}: {}", trace.render());
            assert_eq!(trace.steps.len(), 8, "{scheme:?}: {}", trace.render());
            // The trace must replay to a wedge through the abstract model.
            assert!(replays_to_wedge(r.config, trace), "{}", trace.render());
        }
    }

    #[test]
    fn symmetry_reduction_agrees_and_shrinks() {
        for scheme in [Scheme::Xy, Scheme::Adaptive] {
            let mut with = small(scheme);
            with.symmetry = true;
            let mut without = small(scheme);
            without.symmetry = false;
            let (rw, ro) = (check(&with), check(&without));
            assert_eq!(
                std::mem::discriminant(&rw.verdict),
                std::mem::discriminant(&ro.verdict),
                "{scheme:?}"
            );
            if matches!(rw.verdict, Verdict::DeadlockFree) {
                assert!(
                    rw.states < ro.states,
                    "{scheme:?}: {} !< {}",
                    rw.states,
                    ro.states
                );
            }
        }
    }

    #[test]
    fn random_walk_validates_the_lasso_detector() {
        let mut cfg = small(Scheme::RandomWalk);
        cfg.max_inflight = 1; // one wandering packet lassos already
        let r = check(&cfg);
        assert!(
            matches!(r.verdict, Verdict::LivelockSuspect { .. }),
            "{:?}",
            r.verdict
        );
    }

    #[test]
    fn xy_is_wedge_free_on_3x3_with_two_in_flight() {
        let cfg = ModelConfig {
            cols: 3,
            rows: 3,
            vcs: 1,
            scheme: Scheme::Xy,
            max_inflight: 2,
            symmetry: true,
        };
        let r = check(&cfg);
        assert!(
            matches!(r.verdict, Verdict::DeadlockFree),
            "{:?}",
            r.verdict
        );
    }

    /// Replays `trace` step-by-step through the abstract transition rules,
    /// asserting each step is enabled, and checks the final state wedges.
    fn replays_to_wedge(cfg: ModelConfig, trace: &Trace) -> bool {
        let mut state = vec![0u8; cfg.slots()];
        for step in &trace.steps {
            match *step {
                Step::Inject { node, vc, dest } => {
                    let slot = cfg.slot(node.idx(), LOCAL_PORT, vc);
                    assert_eq!(state[slot], 0, "inject into occupied slot");
                    state[slot] = encode_dest(dest.idx());
                }
                Step::Hop {
                    node,
                    port,
                    vc,
                    dir,
                    to_vc,
                } => {
                    let from = cfg.slot(node.idx(), port, vc);
                    let dest = slot_dest(state[from]).expect("hop from empty slot");
                    let nb = dir
                        .step(cfg.coord(node.idx()), cfg.cols, cfg.rows)
                        .expect("hop off mesh");
                    let to = cfg.slot(nb.to_node(cfg.cols).idx(), dir.opposite().index(), to_vc);
                    assert_eq!(state[to], 0, "hop into occupied slot");
                    state[from] = 0;
                    state[to] = encode_dest(dest);
                }
                Step::Eject { node, port, vc } | Step::Rescue { node, port, vc } => {
                    let slot = cfg.slot(node.idx(), port, vc);
                    assert_ne!(state[slot], 0);
                    state[slot] = 0;
                }
            }
        }
        let mut moves = Vec::new();
        progress_successors(cfg, &state, &mut moves, |_, _| {})
    }
}
