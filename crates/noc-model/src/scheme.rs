//! Abstract routing/mechanism schemes: which moves a buffered packet may
//! take, one scheme per deadlock-freedom story the repo tells.
//!
//! Each scheme is a *routing relation* — the set of (direction, target VC
//! class) pairs a packet buffered at `at` with destination `dest` may
//! request — plus, for SEEC, a rescue transition. The relations
//! deliberately over-approximate the concrete simulator: the simulator's
//! arbiters (round-robin nomination, credit-weighted adaptive choice,
//! seeker scheduling) only ever *select among* these moves, never add to
//! them, so a wedge that is unreachable in the abstract transition system
//! is unreachable under every concrete arbiter. See DESIGN.md §12 for the
//! full soundness argument and its boundary.

use noc_sim::routing::{productive, west_first, xy};
use noc_types::{BaseRouting, Coord, Direction, RoutingAlgo};

/// VC class a move targets at the downstream router.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TargetClass {
    /// Any regular VC of the input port.
    Normal,
    /// The (single) escape VC of the input port.
    Escape,
}

/// One abstract scheme per (routing algorithm × mechanism) family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// Dimension-ordered XY. Deadlock-free by turn elimination.
    Xy,
    /// West-first turn model. Deadlock-free by turn elimination.
    WestFirst,
    /// TFC runs the west-first relation; its frequency-boost bypass is a
    /// timing optimisation that never adds a turn, so its reachable wedge
    /// set equals west-first's.
    Tfc,
    /// Minimal oblivious random: any productive direction.
    Oblivious,
    /// Minimal adaptive random: same *relation* as oblivious (the credit
    /// weighting only biases selection), kept separate for labelling.
    Adaptive,
    /// Duato escape VC over minimal-adaptive normal VCs: normal moves plus
    /// a west-first entry into the escape class; escape residents stay in
    /// the escape class.
    EscapeVc,
    /// SEEC over minimal-adaptive: the adaptive relation plus the seeker /
    /// Free-Flow rescue — any *blocked* buffered packet can be upgraded
    /// and delivered out-of-band (the paper's guaranteed-ejection
    /// property, taken as an axiom here; `seec`'s own tests discharge it).
    Seec,
    /// Validation-only non-minimal scheme: a packet may hop in *any*
    /// direction. Exists to prove the livelock (lasso) detector detects —
    /// minimal schemes cannot cycle, so without this scheme the detector
    /// would be vacuously green.
    RandomWalk,
}

impl Scheme {
    /// Every scheme the `model_check` matrix exercises, with the verdict
    /// it must receive on a small mesh (`true` = no reachable wedge).
    pub const MATRIX: [(Scheme, bool); 7] = [
        (Scheme::Xy, true),
        (Scheme::WestFirst, true),
        (Scheme::Tfc, true),
        (Scheme::Oblivious, false),
        (Scheme::Adaptive, false),
        (Scheme::EscapeVc, true),
        (Scheme::Seec, true),
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Xy => "XY",
            Scheme::WestFirst => "WestFirst",
            Scheme::Tfc => "TFC",
            Scheme::Oblivious => "Oblivious",
            Scheme::Adaptive => "Adaptive",
            Scheme::EscapeVc => "EscapeVC",
            Scheme::Seec => "SEEC",
            Scheme::RandomWalk => "RandomWalk",
        }
    }

    /// Parses a label (case-insensitive), for the `model_check` CLI.
    pub fn parse(s: &str) -> Option<Scheme> {
        match s.to_ascii_lowercase().as_str() {
            "xy" => Some(Scheme::Xy),
            "west-first" | "westfirst" | "wf" => Some(Scheme::WestFirst),
            "tfc" => Some(Scheme::Tfc),
            "oblivious" => Some(Scheme::Oblivious),
            "adaptive" => Some(Scheme::Adaptive),
            "escape" | "escapevc" => Some(Scheme::EscapeVc),
            "seec" => Some(Scheme::Seec),
            "randomwalk" | "random-walk" => Some(Scheme::RandomWalk),
            _ => None,
        }
    }

    /// The abstract scheme matching a concrete routing algorithm (the
    /// mapping the differential harness uses for `noc-verify` matrix rows).
    pub fn from_routing(routing: RoutingAlgo) -> Scheme {
        match routing {
            RoutingAlgo::Uniform(BaseRouting::Xy) => Scheme::Xy,
            RoutingAlgo::Uniform(BaseRouting::WestFirst) => Scheme::WestFirst,
            RoutingAlgo::Uniform(BaseRouting::ObliviousMinimal) => Scheme::Oblivious,
            RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal) => Scheme::Adaptive,
            RoutingAlgo::EscapeVc { .. } => Scheme::EscapeVc,
        }
    }

    /// Whether the last VC of each port is a west-first escape VC.
    pub fn has_escape(self) -> bool {
        matches!(self, Scheme::EscapeVc)
    }

    /// Whether the scheme has the SEEC rescue transition.
    pub fn has_rescue(self) -> bool {
        matches!(self, Scheme::Seec)
    }

    /// VCs per port the scheme needs to be meaningful (escape needs one
    /// regular VC *plus* the escape VC).
    pub fn default_vcs(self) -> u8 {
        if self.has_escape() {
            2
        } else {
            1
        }
    }

    /// Default in-flight packet bound. Four packets close the 2x2 ring
    /// wedge at one VC per port; the escape configuration carries two VCs
    /// per port, so its frontier is capped a step lower to keep the space
    /// small (its certificate is per-bound, stated as such in the verdict).
    pub fn default_inflight(self) -> u8 {
        if self.has_escape() {
            3
        } else {
            4
        }
    }

    /// The moves a packet buffered at `at` (destination `dest`, currently
    /// in an escape-class VC iff `in_escape`) may request, appended to
    /// `out` as (direction, downstream VC class) pairs. Empty means the
    /// packet is at its destination (eject instead) or genuinely has no
    /// legal move.
    pub fn legal_moves(
        self,
        at: Coord,
        dest: Coord,
        cols: u8,
        rows: u8,
        in_escape: bool,
        out: &mut Vec<(Direction, TargetClass)>,
    ) {
        out.clear();
        if at == dest {
            return;
        }
        match self {
            Scheme::Xy => {
                for &d in xy(at, dest).as_slice() {
                    out.push((d, TargetClass::Normal));
                }
            }
            Scheme::WestFirst | Scheme::Tfc => {
                for &d in west_first(at, dest).as_slice() {
                    out.push((d, TargetClass::Normal));
                }
            }
            Scheme::Oblivious | Scheme::Adaptive | Scheme::Seec => {
                for &d in productive(at, dest).as_slice() {
                    out.push((d, TargetClass::Normal));
                }
            }
            Scheme::EscapeVc => {
                if !in_escape {
                    for &d in productive(at, dest).as_slice() {
                        out.push((d, TargetClass::Normal));
                    }
                }
                // Escape entry (and escape-to-escape) is west-first only,
                // matching `Cdg::build`'s dependency edges.
                for &d in west_first(at, dest).as_slice() {
                    out.push((d, TargetClass::Escape));
                }
            }
            Scheme::RandomWalk => {
                for d in Direction::CARDINAL {
                    if d.step(at, cols, rows).is_some() {
                        out.push((d, TargetClass::Normal));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_are_minimal_except_random_walk() {
        let (cols, rows) = (3u8, 3);
        let mut moves = Vec::new();
        for s in [
            Scheme::Xy,
            Scheme::WestFirst,
            Scheme::Tfc,
            Scheme::Oblivious,
            Scheme::Adaptive,
            Scheme::EscapeVc,
            Scheme::Seec,
        ] {
            for esc in [false, true] {
                if esc && !s.has_escape() {
                    continue;
                }
                for a in 0..9u16 {
                    for d in 0..9u16 {
                        let at = noc_types::NodeId(a).to_coord(cols);
                        let dest = noc_types::NodeId(d).to_coord(cols);
                        s.legal_moves(at, dest, cols, rows, esc, &mut moves);
                        for (dir, _) in &moves {
                            let next = dir.step(at, cols, rows).expect("on-mesh move");
                            assert!(
                                next.manhattan(dest) < at.manhattan(dest),
                                "{s:?}: unproductive hop {at}→{next} toward {dest}"
                            );
                        }
                        if a != d {
                            assert!(!moves.is_empty(), "{s:?}: no move {at}→{dest}");
                        }
                    }
                }
            }
        }
        // RandomWalk, by contrast, offers unproductive hops somewhere.
        let at = Coord::new(1, 1);
        Scheme::RandomWalk.legal_moves(at, Coord::new(2, 1), cols, rows, false, &mut moves);
        assert_eq!(moves.len(), 4, "RandomWalk offers every on-mesh direction");
    }

    #[test]
    fn escape_residents_stay_in_escape() {
        let mut moves = Vec::new();
        Scheme::EscapeVc.legal_moves(Coord::new(1, 0), Coord::new(0, 1), 2, 2, true, &mut moves);
        assert!(!moves.is_empty());
        assert!(moves.iter().all(|&(_, c)| c == TargetClass::Escape));
    }
}
