//! Canonical state encoding and the hash-consing interner.
//!
//! A model state assigns to every buffer *slot* — (router, input port,
//! VC) — either "empty" or the destination of the single packet occupying
//! it (virtual cut-through with 1-flit packets: a packet occupies exactly
//! one VC, so packet granularity *is* buffer granularity). Sources are
//! abstracted away entirely: the pool of not-yet-injected packets is
//! unbounded and heterogeneous, and only the in-flight population (capped
//! at [`ModelConfig::max_inflight`]) is part of the state. Two states that
//! place packets with equal destinations in equal slots are therefore the
//! same state, no matter which sources produced them — the
//! injection-abstraction that makes the reachable space finite.
//!
//! Encoding: one byte per slot, `0` = empty, `d + 1` = occupied by a
//! packet destined for node `d`. Slot order is node-major, then port
//! (direction-index order, local port last), then VC — so an encoded
//! state is directly comparable and hashable; the interner stores each
//! distinct encoding once and hands out dense `u32` ids that the explorer
//! uses for its seen-set, BFS queue and parent links.

use crate::scheme::Scheme;
use noc_types::{Coord, NodeId, NUM_PORTS};
use std::collections::HashMap;

/// Index of the local (injection) port within a slot's port dimension.
pub const LOCAL_PORT: usize = NUM_PORTS - 1;

/// One bounded model-checking problem: mesh, VC count, scheme, frontier.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Mesh columns.
    pub cols: u8,
    /// Mesh rows.
    pub rows: u8,
    /// VCs per input port (one virtual network; the escape scheme treats
    /// the last VC as the escape class).
    pub vcs: u8,
    /// The abstract scheme under test.
    pub scheme: Scheme,
    /// In-flight packet bound: injection is disabled while this many
    /// packets are in the network. Verdicts are certificates *up to this
    /// bound*.
    pub max_inflight: u8,
    /// Quotient the search by the scheme's mesh-symmetry group.
    pub symmetry: bool,
}

impl ModelConfig {
    /// The standard small configuration for `scheme`: 2x2 mesh,
    /// scheme-default VC count and in-flight bound, symmetry on.
    pub fn small(scheme: Scheme) -> ModelConfig {
        ModelConfig {
            cols: 2,
            rows: 2,
            vcs: scheme.default_vcs(),
            scheme,
            max_inflight: scheme.default_inflight(),
            symmetry: true,
        }
    }

    /// Total nodes.
    pub fn nodes(self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Total buffer slots (= encoded state length).
    pub fn slots(self) -> usize {
        self.nodes() * NUM_PORTS * self.vcs as usize
    }

    /// Flat slot index of (node, input port, vc).
    pub fn slot(self, node: usize, port: usize, vc: usize) -> usize {
        (node * NUM_PORTS + port) * self.vcs as usize + vc
    }

    /// Inverse of [`ModelConfig::slot`].
    pub fn slot_fields(self, slot: usize) -> (usize, usize, usize) {
        let vcs = self.vcs as usize;
        (
            slot / (NUM_PORTS * vcs),
            (slot / vcs) % NUM_PORTS,
            slot % vcs,
        )
    }

    /// Whether `vc` is the escape class under this scheme.
    pub fn is_escape_vc(self, vc: usize) -> bool {
        self.scheme.has_escape() && vc == self.vcs as usize - 1
    }

    /// Coordinate of a node index.
    pub fn coord(self, node: usize) -> Coord {
        NodeId(node as u16).to_coord(self.cols)
    }

    /// One-line description for tables and verdicts.
    pub fn describe(self) -> String {
        format!(
            "{}x{} mesh, {} vc/port, ≤{} in flight{}",
            self.cols,
            self.rows,
            self.vcs,
            self.max_inflight,
            if self.symmetry {
                ", symmetry-reduced"
            } else {
                ""
            }
        )
    }
}

/// Decodes a slot byte: `None` for empty, else the packet's destination.
#[inline]
pub fn slot_dest(byte: u8) -> Option<usize> {
    (byte != 0).then(|| byte as usize - 1)
}

/// Encodes a destination into a slot byte.
#[inline]
pub fn encode_dest(dest: usize) -> u8 {
    dest as u8 + 1
}

/// Hash-consing store: each distinct encoded state appears exactly once
/// and is addressed by a dense `u32` id (insertion order).
#[derive(Default)]
pub struct Interner {
    map: HashMap<Box<[u8]>, u32>,
    states: Vec<Box<[u8]>>,
}

impl Interner {
    /// Interns `state`, returning `(id, freshly_inserted)`.
    pub fn intern(&mut self, state: &[u8]) -> (u32, bool) {
        if let Some(&id) = self.map.get(state) {
            return (id, false);
        }
        let id = self.states.len() as u32;
        let boxed: Box<[u8]> = state.into();
        self.states.push(boxed.clone());
        self.map.insert(boxed, id);
        (id, true)
    }

    /// The encoding behind `id`.
    pub fn get(&self, id: u32) -> &[u8] {
        &self.states[id as usize]
    }

    /// Looks up `state` without interning it.
    pub fn lookup(&self, state: &[u8]) -> Option<&u32> {
        self.map.get(state)
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let cfg = ModelConfig::small(Scheme::EscapeVc);
        for s in 0..cfg.slots() {
            let (n, p, v) = cfg.slot_fields(s);
            assert_eq!(cfg.slot(n, p, v), s);
        }
        assert_eq!(cfg.slots(), 4 * 5 * 2);
        assert!(cfg.is_escape_vc(1));
        assert!(!cfg.is_escape_vc(0));
    }

    #[test]
    fn interner_deduplicates() {
        let mut i = Interner::default();
        let (a, fresh_a) = i.intern(&[0, 1, 2]);
        let (b, fresh_b) = i.intern(&[0, 1, 2]);
        let (c, _) = i.intern(&[0, 0, 0]);
        assert!(fresh_a && !fresh_b);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(a), &[0, 1, 2]);
    }
}
