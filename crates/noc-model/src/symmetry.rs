//! Mesh-symmetry reduction: orbit canonicalization of encoded states.
//!
//! A mesh automorphism that also preserves the scheme's routing relation
//! maps reachable states to reachable states and wedges to wedges, so the
//! explorer only needs one representative per orbit. Each scheme admits a
//! different group:
//!
//! * fully symmetric relations (productive-direction schemes, the random
//!   walk) admit the whole dihedral group — 8 elements on square meshes,
//!   the 4 reflection/rotation elements without the transpose otherwise;
//! * XY is x-before-y, so transposing the mesh breaks it: its group is
//!   `{id, flip_x, flip_y, rot180}`;
//! * anything west-first (west-first itself, TFC, the escape class of the
//!   Duato composite) singles out one axis *direction*: only `{id,
//!   flip_y}` survive.
//!
//! Canonical form = the lexicographically smallest encoding over the
//! group's images. Because the group is finite, a lasso in the quotient
//! graph lifts to a real lasso (iterate the witness transform until it
//! returns to the identity), and wedge-ness of a state is invariant — so
//! verdicts computed on the quotient are verdicts of the full system.
//! Concrete *traces*, however, are extracted from a symmetry-free rerun
//! (see `explore`), keeping witness steps directly replayable.

use crate::scheme::Scheme;
use crate::state::ModelConfig;
use noc_types::{Coord, Direction};

/// One group element, precompiled to slot and destination permutations.
pub struct Transform {
    /// `slot_perm[s]` = image slot of slot `s`.
    slot_perm: Vec<u32>,
    /// `node_perm[n]` = image node of node `n` (applied to destinations).
    node_perm: Vec<u8>,
}

/// Geometric generators: apply transpose first, then the two flips.
#[derive(Clone, Copy)]
struct Geo {
    transpose: bool,
    flip_x: bool,
    flip_y: bool,
}

impl Geo {
    fn map_coord(self, c: Coord, cols: u8, rows: u8) -> Coord {
        let (mut x, mut y) = if self.transpose {
            (c.y, c.x)
        } else {
            (c.x, c.y)
        };
        if self.flip_x {
            x = cols - 1 - x;
        }
        if self.flip_y {
            y = rows - 1 - y;
        }
        Coord::new(x, y)
    }

    fn map_dir(self, d: Direction) -> Direction {
        // Transpose maps a step (dx, dy) to (dy, dx): N↔W, S↔E.
        let d = if self.transpose {
            match d {
                Direction::North => Direction::West,
                Direction::West => Direction::North,
                Direction::South => Direction::East,
                Direction::East => Direction::South,
                Direction::Local => Direction::Local,
            }
        } else {
            d
        };
        let d = if self.flip_x {
            match d {
                Direction::East => Direction::West,
                Direction::West => Direction::East,
                other => other,
            }
        } else {
            d
        };
        if self.flip_y {
            match d {
                Direction::North => Direction::South,
                Direction::South => Direction::North,
                other => other,
            }
        } else {
            d
        }
    }
}

/// The scheme-valid symmetry group of `cfg`, compiled to permutations.
/// Always includes the identity; with `cfg.symmetry` disabled callers
/// simply skip canonicalization.
pub fn transforms_for(cfg: ModelConfig) -> Vec<Transform> {
    let square = cfg.cols == cfg.rows;
    let mut geos: Vec<Geo> = Vec::new();
    for transpose in [false, true] {
        if transpose && !square {
            continue;
        }
        for flip_x in [false, true] {
            for flip_y in [false, true] {
                geos.push(Geo {
                    transpose,
                    flip_x,
                    flip_y,
                });
            }
        }
    }
    geos.retain(|g| match cfg.scheme {
        Scheme::Oblivious | Scheme::Adaptive | Scheme::Seec | Scheme::RandomWalk => true,
        Scheme::Xy => !g.transpose,
        Scheme::WestFirst | Scheme::Tfc | Scheme::EscapeVc => !g.transpose && !g.flip_x,
    });
    geos.iter().map(|&g| compile(cfg, g)).collect()
}

fn compile(cfg: ModelConfig, g: Geo) -> Transform {
    let nodes = cfg.nodes();
    let node_perm: Vec<u8> = (0..nodes)
        .map(|n| {
            g.map_coord(cfg.coord(n), cfg.cols, cfg.rows)
                .to_node(cfg.cols)
                .idx() as u8
        })
        .collect();
    let mut slot_perm = vec![0u32; cfg.slots()];
    for (s, out) in slot_perm.iter_mut().enumerate() {
        let (n, p, v) = cfg.slot_fields(s);
        let np = node_perm[n] as usize;
        let pp = g.map_dir(Direction::from_index(p)).index();
        *out = cfg.slot(np, pp, v) as u32;
    }
    Transform {
        slot_perm,
        node_perm,
    }
}

/// Writes the image of `state` under `t` into `out`.
pub fn apply(t: &Transform, state: &[u8], out: &mut [u8]) {
    for (s, &b) in state.iter().enumerate() {
        out[t.slot_perm[s] as usize] = if b == 0 {
            0
        } else {
            t.node_perm[b as usize - 1] + 1
        };
    }
}

/// Replaces `state` with the lexicographically smallest encoding over the
/// group's images. `scratch` must be `state.len()` bytes.
pub fn canonicalize(transforms: &[Transform], state: &mut [u8], scratch: &mut [u8]) {
    // Images must all be taken of the *original* state: replacing it
    // mid-loop would make later candidates path-dependent compositions
    // and the pass could miss the orbit minimum.
    let base = state.to_vec();
    // transforms[0] is the identity; start from the state itself.
    for t in &transforms[1..] {
        apply(t, &base, scratch);
        if scratch < state {
            state.copy_from_slice(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::encode_dest;

    #[test]
    fn group_sizes_match_the_schemes() {
        let sizes = [
            (Scheme::Adaptive, 8),
            (Scheme::RandomWalk, 8),
            (Scheme::Xy, 4),
            (Scheme::WestFirst, 2),
            (Scheme::Tfc, 2),
            (Scheme::EscapeVc, 2),
        ];
        for (scheme, n) in sizes {
            let cfg = ModelConfig::small(scheme);
            assert_eq!(transforms_for(cfg).len(), n, "{scheme:?}");
        }
        // Non-square meshes lose the transpose elements.
        let mut cfg = ModelConfig::small(Scheme::Adaptive);
        cfg.rows = 3;
        assert_eq!(transforms_for(cfg).len(), 4);
    }

    #[test]
    fn transforms_are_permutations_preserving_occupancy() {
        let cfg = ModelConfig::small(Scheme::Adaptive);
        let mut state = vec![0u8; cfg.slots()];
        state[cfg.slot(0, 3, 0)] = encode_dest(3);
        state[cfg.slot(2, crate::state::LOCAL_PORT, 0)] = encode_dest(1);
        let mut out = vec![0u8; cfg.slots()];
        for t in transforms_for(cfg) {
            apply(&t, &state, &mut out);
            assert_eq!(
                out.iter().filter(|&&b| b != 0).count(),
                2,
                "occupancy must be preserved"
            );
            // Local-port slots map to local-port slots.
            let locals = (0..cfg.slots())
                .filter(|&s| cfg.slot_fields(s).1 == crate::state::LOCAL_PORT)
                .filter(|&s| out[s] != 0)
                .count();
            assert_eq!(locals, 1);
        }
    }

    #[test]
    fn canonical_form_is_orbit_invariant() {
        let cfg = ModelConfig::small(Scheme::Adaptive);
        let tfs = transforms_for(cfg);
        let mut state = vec![0u8; cfg.slots()];
        state[cfg.slot(1, 0, 0)] = encode_dest(2);
        state[cfg.slot(3, 2, 0)] = encode_dest(0);
        let mut scratch = vec![0u8; cfg.slots()];

        let mut canon = state.clone();
        canonicalize(&tfs, &mut canon, &mut scratch);

        // Every image of the state canonicalizes to the same representative.
        let mut img = vec![0u8; cfg.slots()];
        for t in &tfs {
            apply(t, &state, &mut img);
            let mut c = img.clone();
            canonicalize(&tfs, &mut c, &mut scratch);
            assert_eq!(c, canon);
        }
    }

    #[test]
    fn port_dimension_uses_num_ports() {
        // Guard against a port-layout drift between noc-types and the model.
        assert_eq!(noc_types::NUM_PORTS, 5);
        assert_eq!(crate::state::LOCAL_PORT, Direction::Local.index());
    }
}
