//! Bench/regen for Table 3: seek-cost scaling measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;

fn bench(c: &mut Criterion) {
    println!("{}", noc_experiments::figs::table3::run(true));
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for (label, scheme) in [("seec", Scheme::seec()), ("mseec", Scheme::mseec())] {
        g.bench_function(format!("seek/{label}"), |b| {
            b.iter(|| {
                run_synth(
                    SynthSpec::new(4, 2, scheme, TrafficPattern::UniformRandom, 0.30)
                        .with_cycles(3_000),
                )
                .sideband_hops
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
