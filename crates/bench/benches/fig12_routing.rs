//! Bench/regen for Fig 12: routing-variant kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;
use noc_types::BaseRouting;

fn bench(c: &mut Criterion) {
    for t in noc_experiments::figs::fig12::run(true) {
        println!("{t}");
    }
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for routing in [BaseRouting::ObliviousMinimal, BaseRouting::AdaptiveMinimal] {
        g.bench_function(format!("seec_routing/{routing:?}"), |b| {
            b.iter(|| {
                run_synth(
                    SynthSpec::new(
                        4,
                        2,
                        Scheme::Seec { routing },
                        TrafficPattern::Transpose,
                        0.10,
                    )
                    .with_cycles(3_000),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
