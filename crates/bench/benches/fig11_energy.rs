//! Bench/regen for Fig 11: energy accounting kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_power::energy::link_energy;
use noc_traffic::TrafficPattern;
use noc_types::NetConfig;

fn bench(c: &mut Criterion) {
    println!("{}", noc_experiments::figs::fig11::run(true));
    let cfg = NetConfig::synth(4, 1);
    let stats = run_synth(
        SynthSpec::new(4, 1, Scheme::Spin, TrafficPattern::UniformRandom, 0.25).with_cycles(5_000),
    );
    c.bench_function("fig11/energy_report", |b| {
        b.iter(|| link_energy(&stats, &cfg));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
