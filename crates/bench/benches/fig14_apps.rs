//! Bench/regen for Fig 14: one application point per scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_app, AppSpec, Scheme};
use noc_traffic::apps;

fn bench(c: &mut Criterion) {
    for t in noc_experiments::figs::fig14::run(true) {
        println!("{t}");
    }
    let app = *apps::by_name("blackscholes").unwrap();
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("app_point/seec", |b| {
        b.iter(|| {
            run_app(AppSpec {
                k: 4,
                vnets: 1,
                vcs: 2,
                scheme: Scheme::seec(),
                app,
                txns_per_core: 10,
                max_cycles: 60_000,
                seed: 3,
                allow_unverified: false,
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
