//! Bench/regen for Fig 10: FF-fraction measurement kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;

fn bench(c: &mut Criterion) {
    for t in noc_experiments::figs::fig10::run(true) {
        println!("{t}");
    }
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("ff_fraction/seec_saturated", |b| {
        b.iter(|| {
            run_synth(
                SynthSpec::new(4, 4, Scheme::seec(), TrafficPattern::UniformRandom, 0.30)
                    .with_cycles(3_000),
            )
            .ff_fraction()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
