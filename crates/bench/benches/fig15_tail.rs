//! Bench/regen for Fig 15: tail-latency measurement point.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_app, AppSpec, Scheme};
use noc_traffic::apps;
use noc_types::BaseRouting;

fn bench(c: &mut Criterion) {
    println!("{}", noc_experiments::figs::fig15::run(true));
    let app = *apps::by_name("fft").unwrap();
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("tail/seec_xy", |b| {
        b.iter(|| {
            run_app(AppSpec {
                k: 4,
                vnets: 1,
                vcs: 2,
                scheme: Scheme::Seec {
                    routing: BaseRouting::Xy,
                },
                app,
                txns_per_core: 10,
                max_cycles: 60_000,
                seed: 5,
                allow_unverified: false,
            })
            .stats
            .max_total_latency
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
