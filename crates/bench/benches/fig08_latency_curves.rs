//! Bench/regen for Fig 8: one latency-curve point per headline scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        noc_experiments::figs::fig08::panel(TrafficPattern::UniformRandom, 4, true)
    );
    let mut g = c.benchmark_group("fig08");
    g.sample_size(10);
    for scheme in [Scheme::Xy, Scheme::seec(), Scheme::mseec()] {
        g.bench_function(format!("point/{}", scheme.label()), |b| {
            b.iter(|| {
                run_synth(
                    SynthSpec::new(4, 4, scheme, TrafficPattern::UniformRandom, 0.08)
                        .with_cycles(3_000),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
