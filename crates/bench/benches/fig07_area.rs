//! Bench/regen for Fig 7: router area model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_power::area::router_area;
use noc_types::{NetConfig, SchemeKind};

fn bench(c: &mut Criterion) {
    // Regenerate the artifact once.
    println!("{}", noc_experiments::figs::fig07::run());
    let cfg = NetConfig::full_system(8, 6, 1);
    c.bench_function("fig07/area_model_all_schemes", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for s in [
                SchemeKind::EscapeVc,
                SchemeKind::Spin,
                SchemeKind::Swap,
                SchemeKind::Drain,
                SchemeKind::Seec,
            ] {
                total += router_area(s, &cfg).total();
            }
            std::hint::black_box(total)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
