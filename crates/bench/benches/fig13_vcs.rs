//! Bench/regen for Fig 13: VC-scaling kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;

fn bench(c: &mut Criterion) {
    println!("{}", noc_experiments::figs::fig13::run(true));
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for vcs in [2u8, 8] {
        g.bench_function(format!("escape_vc/{vcs}vcs"), |b| {
            b.iter(|| {
                run_synth(
                    SynthSpec::new(
                        4,
                        vcs,
                        Scheme::escape(),
                        TrafficPattern::UniformRandom,
                        0.10,
                    )
                    .with_cycles(3_000),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
