//! Bench/regen for Fig 9: saturation search kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::runner::Scheme;
use noc_experiments::saturation::{latency_curve, saturation_from_curve};
use noc_traffic::TrafficPattern;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        noc_experiments::figs::fig09::panel(TrafficPattern::Transpose, true)
    );
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("saturation/seec_transpose_4x4", |b| {
        b.iter(|| {
            let curve = latency_curve(
                4,
                2,
                Scheme::seec(),
                TrafficPattern::Transpose,
                &[0.05, 0.15],
                3_000,
            );
            saturation_from_curve(&curve, 3.0)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
