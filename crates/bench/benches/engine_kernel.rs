//! Raw engine throughput: simulated router-cycles per second across network
//! sizes — the substrate's own performance figure.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for k in [4u8, 8] {
        let cycles = 2_000u64;
        g.throughput(Throughput::Elements(cycles * (k as u64).pow(2)));
        g.bench_function(format!("router_cycles/{k}x{k}"), |b| {
            b.iter(|| {
                run_synth(
                    SynthSpec::new(k, 2, Scheme::Xy, TrafficPattern::UniformRandom, 0.10)
                        .with_cycles(cycles),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
