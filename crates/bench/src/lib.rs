//! Bench support crate: see `benches/` for one Criterion bench per paper
//! table/figure. Each bench regenerates the (reduced) artifact once and
//! times the representative simulation kernel behind it.

#![forbid(unsafe_code)]
