//! The `BENCH_02` harness: one JSON report combining raw engine throughput
//! with the parallel sweep executor's sequential-vs-parallel wall clock.
//!
//! Usage: `cargo run --release -p bench --bin bench02 [-- <out.json>]`
//! (default output `BENCH_02.json`). `NOC_BENCH_SAMPLES` overrides the
//! sample counts. The harness asserts that the parallel sweep's results are
//! byte-identical to the sequential ones — the determinism gate rides along
//! with every bench run.
//!
//! The report is honest about its host: `host_parallelism` records what
//! `std::thread::available_parallelism` saw, and a `speedup` ≈ 1.0 on a
//! single-core box is expected, not a failure.

use criterion::{record_extra, records, BenchRecord, Criterion, Throughput};
use noc_experiments::figs::fig08;
use noc_experiments::runner::{run_synth, Scheme, SynthSpec};
use noc_traffic::TrafficPattern;
use std::time::Instant;

/// Timed iterations per measurement (panels take ~1 s each).
const PANEL_SAMPLES: usize = 3;

/// Threads for the parallel leg of the sweep comparison.
const PAR_THREADS: usize = 8;

fn env_samples(default: usize) -> usize {
    std::env::var("NOC_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// Times `f` over warm-up + samples and registers min/median/mean.
fn time_block<F: FnMut() -> String>(id: &str, samples: usize, mut f: F) -> (u128, String) {
    let reference = f(); // warm-up; also the output the other leg must match
    let mut ns: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    let median = ns[ns.len() / 2];
    record_extra(BenchRecord {
        id: id.to_string(),
        samples,
        min_ns: ns[0],
        median_ns: median,
        mean_ns: ns.iter().sum::<u128>() / ns.len() as u128,
        throughput: None,
        per_second: None,
        batch_width: None,
    });
    println!("  {id}: median {:.1} ms", median as f64 / 1e6);
    (median, reference)
}

fn main() {
    // Storage-fault knobs are validated eagerly, like the experiment
    // binaries: garbage is a configuration error at startup, not a panic
    // after the benches have run for minutes.
    if let Err(e) = noc_experiments::cli::validate_vfs_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_02.json".to_string());
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Leg 1: raw engine throughput (the single-thread hot-path figure).
    println!("engine kernel");
    let mut c = Criterion;
    let mut g = c.benchmark_group("engine");
    g.sample_size(env_samples(10));
    for k in [4u8, 8] {
        let cycles = 2_000u64;
        g.throughput(Throughput::Elements(cycles * (k as u64).pow(2)));
        g.bench_function(format!("router_cycles/{k}x{k}"), |b| {
            b.iter(|| {
                run_synth(
                    SynthSpec::new(k, 2, Scheme::Xy, TrafficPattern::UniformRandom, 0.10)
                        .with_cycles(cycles),
                )
            });
        });
    }
    g.finish();

    // Leg 2: the quick fig-8 panel, sequential then parallel, with the
    // determinism gate on the side.
    println!("sweep executor (fig08 quick panel, uniform-random 4x4)");
    let samples = env_samples(PANEL_SAMPLES);
    let panel = || fig08::panel(TrafficPattern::UniformRandom, 4, true).to_string();
    rayon::set_num_threads(1);
    let (seq_ns, seq_out) = time_block("fig08_quick/sequential", samples, panel);
    rayon::set_num_threads(PAR_THREADS);
    let (par_ns, par_out) = time_block("fig08_quick/parallel8", samples, panel);
    assert_eq!(seq_out, par_out, "parallel sweep diverged from sequential");
    let speedup = seq_ns as f64 / par_ns as f64;
    println!("  speedup x{speedup:.2} on {host} host core(s)");

    // Combined report: criterion's records plus host context.
    let recs = records();
    let mut json = String::from("{\n");
    json.push_str("  \"report\": \"BENCH_02\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"sweep_threads\": {PAR_THREADS},\n"));
    if host > 1 {
        json.push_str(&format!("  \"sweep_speedup\": {speedup:.3},\n"));
    } else {
        // Eight rayon threads on one core measure scheduling overhead, not
        // the executor; a ~1.0 "speedup" in the report would invite bogus
        // cross-host comparisons. Null says "not applicable here".
        json.push_str("  \"sweep_speedup\": null,\n");
    }
    json.push_str("  \"sweep_deterministic\": true,\n");
    json.push_str("  \"benches\": [\n");
    for (i, r) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            r.id, r.samples, r.min_ns, r.median_ns, r.mean_ns
        ));
        if let Some(p) = r.per_second {
            json.push_str(&format!(", \"per_second\": {p:.1}"));
        }
        if let Some(w) = r.batch_width {
            json.push_str(&format!(", \"batch_width\": {w}"));
        }
        json.push_str(if i + 1 == recs.len() { "}\n" } else { "},\n" });
    }
    json.push_str("  ]\n}\n");
    // Atomic: a torn BENCH json would poison downstream comparisons.
    noc_store::active()
        .write_atomic(std::path::Path::new(&out), json.as_bytes())
        .expect("writing bench report");
    println!("wrote {out}");
}
