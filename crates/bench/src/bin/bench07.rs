//! The `BENCH_07` harness: big-mesh engine scaling plus the lockstep
//! batched executor against equivalent scalar runs.
//!
//! Usage: `cargo run --release -p bench --bin bench07 [-- <out.json>]`
//! (default output `BENCH_07.json`). `NOC_BENCH_SAMPLES` overrides the
//! sample counts.
//!
//! Two legs:
//!
//! * `engine/router_cycles/{16x16,32x32}` — the scalar hot path on meshes
//!   big enough that the struct-of-arrays credit core's layout, not loop
//!   overhead, dominates (bench02 keeps the historical 4x4/8x8 points).
//! * `engine/scalar8/{4x4,8x8}` vs `engine/batched/{4x4,8x8}` — eight
//!   bursty design points (same shape; routing, rate and seed differ) run
//!   one-after-another the way the sweep runner's scalar path would,
//!   against the same eight lanes in one [`LockstepBatch`]. Both legs are
//!   single-threaded; the batched win comes from the shared per-cycle
//!   skeleton plus batch-default idle-cycle skipping across the burst
//!   gaps. The harness asserts the two legs' statistics are byte-identical
//!   — the determinism gate rides along with every bench run.

use criterion::{record_extra, records, BenchRecord};
use noc_baselines::escape_vc_config;
use noc_sim::{LockstepBatch, NoMechanism, Sim};
use noc_traffic::{BurstWorkload, SyntheticWorkload, TrafficPattern};
use noc_types::{BaseRouting, NetConfig, RoutingAlgo};
use std::time::Instant;

/// Timed iterations per measurement.
const SAMPLES: usize = 3;

/// Lanes per batch — the acceptance comparison is 8-wide.
const WIDTH: usize = 8;

/// Cycles per lane in the batched/scalar comparison. Bursts of 32 cycles
/// every 4096 make the inter-burst gap dominate scalar wall time: busy
/// cycles cost ~30x an idle cycle here, so gap-dominated traffic is the
/// regime where idle skipping pays (steady saturating traffic would be
/// Amdahl-capped near 1.0x and is covered by the `router_cycles` leg).
const BATCH_CYCLES: u64 = 32_768;
const BURST_PERIOD: u64 = 4_096;
const BURST_LEN: u64 = 32;

fn env_samples(default: usize) -> usize {
    std::env::var("NOC_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// Times `f` (after one warm-up call) and registers the record. Returns
/// the median and the warm-up output for cross-leg identity checks.
fn time_block<F: FnMut() -> String>(
    id: &str,
    samples: usize,
    elements: u64,
    batch_width: usize,
    mut f: F,
) -> (u128, String) {
    let reference = f();
    let mut ns: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    let median = ns[ns.len() / 2];
    let per_second = elements as f64 / (median as f64 / 1e9).max(1e-12);
    record_extra(BenchRecord {
        id: id.to_string(),
        samples,
        min_ns: ns[0],
        median_ns: median,
        mean_ns: ns.iter().sum::<u128>() / ns.len() as u128,
        throughput: Some(elements),
        per_second: Some(per_second),
        batch_width: Some(batch_width),
    });
    println!(
        "  {id}: median {:.1} ms, {per_second:.0} node-cycles/s",
        median as f64 / 1e6
    );
    (median, reference)
}

/// A scalar big-mesh engine point: XY routing, steady uniform-random load.
fn engine_sim(k: u8, rate: f64, seed: u64) -> Sim {
    let cfg = NetConfig::synth(k, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(seed);
    let wl = SyntheticWorkload::new(
        TrafficPattern::UniformRandom,
        rate,
        cfg.cols,
        cfg.rows,
        cfg.warmup,
        seed,
    );
    Sim::new(cfg, Box::new(wl), Box::new(NoMechanism))
}

/// Lane `i` of the batched comparison: same shape for every `i`, but the
/// routing relation, offered load and seeds differ — the mixed-scheme
/// batch the sweep runner produces.
fn burst_lane(k: u8, i: usize) -> Sim {
    let seed = 0xB07_u64 + 97 * i as u64;
    let rate = [0.10, 0.12, 0.15][i % 3];
    let base = NetConfig::synth(k, 2).with_seed(seed);
    let cfg = match i % 3 {
        0 => base.with_routing(RoutingAlgo::Uniform(BaseRouting::Xy)),
        1 => base.with_routing(RoutingAlgo::Uniform(BaseRouting::WestFirst)),
        _ => escape_vc_config(base, BaseRouting::AdaptiveMinimal),
    };
    let wl = BurstWorkload::new(
        TrafficPattern::UniformRandom,
        rate,
        BURST_PERIOD,
        BURST_LEN,
        cfg.cols,
        cfg.rows,
        cfg.warmup,
        seed,
    );
    Sim::new(cfg, Box::new(wl), Box::new(NoMechanism))
}

fn main() {
    // Storage-fault knobs are validated eagerly, like the experiment
    // binaries: garbage is a configuration error at startup, not a panic
    // after the benches have run for minutes.
    if let Err(e) = noc_experiments::cli::validate_vfs_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_07.json".to_string());
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let samples = env_samples(SAMPLES);

    // Leg 1: big-mesh scalar engine points.
    println!("engine kernel, big meshes");
    for (k, rate, cycles) in [(16u8, 0.05, 2_000u64), (32, 0.02, 1_000)] {
        let nodes = u64::from(k) * u64::from(k);
        let (_, _) = time_block(
            &format!("engine/router_cycles/{k}x{k}"),
            samples,
            cycles * nodes,
            1,
            || {
                let mut sim = engine_sim(k, rate, 0xA11CE);
                sim.run(cycles);
                format!("{:?}", sim.finish())
            },
        );
    }

    // Leg 2: 8 scalar runs vs one 8-wide lockstep batch, same points.
    let mut speedups = Vec::new();
    for k in [4u8, 8] {
        println!("batched executor, {WIDTH} lanes of {k}x{k} bursty traffic");
        let nodes = u64::from(k) * u64::from(k);
        let elements = BATCH_CYCLES * nodes * WIDTH as u64;
        let scalar = || {
            (0..WIDTH)
                .map(|i| {
                    let mut sim = burst_lane(k, i);
                    sim.run(BATCH_CYCLES);
                    format!("{:?}\n", sim.finish())
                })
                .collect::<String>()
        };
        let batched = || {
            let mut batch = LockstepBatch::new((0..WIDTH).map(|i| burst_lane(k, i)).collect());
            batch.run(BATCH_CYCLES);
            let skipped: u64 = batch.lanes().iter().map(|l| l.skipped_cycles).sum();
            println!(
                "    (batched leg skipped {:.1}% of lane-cycles)",
                100.0 * skipped as f64 / (BATCH_CYCLES * WIDTH as u64) as f64
            );
            batch
                .finish()
                .iter()
                .map(|s| format!("{s:?}\n"))
                .collect::<String>()
        };
        let (scalar_ns, scalar_out) = time_block(
            &format!("engine/scalar8/{k}x{k}"),
            samples,
            elements,
            1,
            scalar,
        );
        let (batch_ns, batch_out) = time_block(
            &format!("engine/batched/{k}x{k}"),
            samples,
            elements,
            WIDTH,
            batched,
        );
        assert_eq!(
            scalar_out, batch_out,
            "lockstep batch diverged from scalar lanes at {k}x{k}"
        );
        let speedup = scalar_ns as f64 / batch_ns as f64;
        println!("  batched speedup x{speedup:.2} at {k}x{k} (single thread)");
        speedups.push((k, speedup));
    }

    // Combined report: criterion's records plus host context.
    let recs = records();
    let mut json = String::from("{\n");
    json.push_str("  \"report\": \"BENCH_07\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"batch_width\": {WIDTH},\n"));
    for (k, s) in &speedups {
        json.push_str(&format!("  \"batched_speedup_{k}x{k}\": {s:.3},\n"));
    }
    json.push_str("  \"batched_deterministic\": true,\n");
    json.push_str("  \"benches\": [\n");
    for (i, r) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            r.id, r.samples, r.min_ns, r.median_ns, r.mean_ns
        ));
        if let Some(t) = r.throughput {
            json.push_str(&format!(", \"throughput\": {t}"));
        }
        if let Some(p) = r.per_second {
            json.push_str(&format!(", \"per_second\": {p:.1}"));
        }
        if let Some(w) = r.batch_width {
            json.push_str(&format!(", \"batch_width\": {w}"));
        }
        json.push_str(if i + 1 == recs.len() { "}\n" } else { "},\n" });
    }
    json.push_str("  ]\n}\n");
    // Atomic: a torn BENCH json would poison downstream comparisons.
    noc_store::active()
        .write_atomic(std::path::Path::new(&out), json.as_bytes())
        .expect("writing bench report");
    println!("wrote {out}");
}
