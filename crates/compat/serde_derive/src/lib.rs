//! Hermetic stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! config/report types (nothing actually serializes — `serde_json` is not
//! used), so these derives accept the `#[serde(...)]` helper attribute and
//! expand to nothing. That keeps the derive annotations in place for a future
//! swap back to the real crates.
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
