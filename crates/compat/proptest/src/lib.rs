//! Hermetic stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses — the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), integer-range, tuple,
//! `prop_map` and `prop::collection::vec` strategies, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` family — on top of a
//! deterministic SplitMix64 case generator. No shrinking: a failing case
//! reports its generated inputs via the assertion message instead.
#![forbid(unsafe_code)]

/// Deterministic case RNG and run configuration.
pub mod test_runner {
    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// Builds a config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulator-backed properties fast while still sweeping a
            // meaningful slice of the input space deterministically.
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream feeding the strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used for every property run.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EEC_C0DE_0000_0001,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the deterministic stream.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Generates `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a strategy producing vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().gen_value(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Namespace re-exports matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $(
                                let $p =
                                    $crate::strategy::Strategy::gen_value(&($s), &mut rng);
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "property {} failed at case {}/{}:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Property equality assertion, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Property inequality assertion, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}
