//! Hermetic stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derives from the vendored `serde_derive`. The workspace annotates
//! types with these derives as forward-looking metadata; no code path
//! performs actual (de)serialization, so marker traits suffice.
#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
