//! Hermetic stand-in for `criterion` with real multi-iteration timing.
//!
//! Each `bench_function` runs its body once as warm-up, then `sample_size`
//! timed iterations (default 10, overridable per group or via the
//! `NOC_BENCH_SAMPLES` environment variable), and reports min / median /
//! mean wall time. With a `Throughput` annotation it also reports elements
//! per second (computed from the median — the robust central estimate).
//!
//! Results accumulate in a process-global registry; `criterion_main!` writes
//! them as JSON to the path named by `NOC_BENCH_JSON` (if set), and
//! [`write_json`] / [`record_extra`] let harness binaries emit combined
//! reports (see `crates/bench/src/bin/bench02.rs`).
#![forbid(unsafe_code)]

use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation: scales timing into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement, as stored in the global registry.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Fully-qualified id (`group/bench`).
    pub id: String,
    /// Number of timed iterations.
    pub samples: usize,
    pub min_ns: u128,
    pub median_ns: u128,
    pub mean_ns: u128,
    /// Elements (or bytes) per iteration, when annotated.
    pub throughput: Option<u64>,
    /// Elements per second derived from the median, when annotated.
    pub per_second: Option<f64>,
    /// Lockstep lanes driven per iteration, when the measured kernel is a
    /// batched executor (`None` for ordinary scalar benches; `Some(1)`
    /// marks an explicitly scalar leg of a batched comparison).
    pub batch_width: Option<usize>,
}

fn registry() -> &'static Mutex<Vec<BenchRecord>> {
    static REGISTRY: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Appends a record produced outside the `Criterion` API (e.g. a wall-clock
/// measurement of a whole figure panel) to the registry.
pub fn record_extra(record: BenchRecord) {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(record);
}

/// Snapshot of all records accumulated so far.
pub fn records() -> Vec<BenchRecord> {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders all accumulated records as a JSON document.
pub fn render_json() -> String {
    let recs = records();
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}",
            json_escape(&r.id),
            r.samples,
            r.min_ns,
            r.median_ns,
            r.mean_ns
        ));
        if let Some(t) = r.throughput {
            out.push_str(&format!(", \"throughput\": {t}"));
        }
        if let Some(p) = r.per_second {
            out.push_str(&format!(", \"per_second\": {p:.1}"));
        }
        if let Some(w) = r.batch_width {
            out.push_str(&format!(", \"batch_width\": {w}"));
        }
        out.push_str(if i + 1 == recs.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes all accumulated records to `path` as JSON, atomically: the
/// report is staged in a temp sibling, fsync'd, and renamed into place, so
/// a crash (or a full disk) mid-write can never leave a torn half-report
/// for a downstream comparison to choke on. (Inlined rather than depending
/// on `noc-store`: this crate is a stand-in for an external dependency and
/// stays free of workspace-internal imports.)
pub fn write_json(path: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let target = std::path::Path::new(path);
    let name = target
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("bench.json");
    let tmp = target.with_file_name(format!(".{name}.tmp.{}", std::process::id()));
    let staged = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(render_json().as_bytes())?;
        f.sync_all()
    })();
    if let Err(e) = staged {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, target) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Called by `criterion_main!` after all groups ran: honours
/// `NOC_BENCH_JSON=<path>`.
pub fn write_json_if_requested() {
    if let Ok(path) = std::env::var("NOC_BENCH_JSON") {
        if !path.is_empty() {
            write_json(&path).expect("writing NOC_BENCH_JSON report");
            println!("wrote bench report to {path}");
        }
    }
}

/// Reads and validates `NOC_BENCH_SAMPLES`. Unset or empty means "use the
/// per-bench default"; anything else must be an integer ≥ 1 — `0` or garbage
/// aborts with a clear message instead of silently falling back.
fn env_samples() -> Option<usize> {
    let raw = std::env::var("NOC_BENCH_SAMPLES").ok()?;
    let t = raw.trim();
    if t.is_empty() {
        return None;
    }
    match t.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => panic!(
            "NOC_BENCH_SAMPLES={raw:?}: must be an integer >= 1 (unset the \
             variable for the per-bench default)"
        ),
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// Timer handle passed to bench bodies.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Runs the routine once for warm-up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.durations.clear();
        self.durations.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: String,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: env_samples().unwrap_or(samples),
        durations: Vec::new(),
    };
    f(&mut b);
    if b.durations.is_empty() {
        // The body never called `iter` — nothing to report.
        println!("  {id}: no measurement");
        return;
    }
    let mut sorted = b.durations.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let elems = throughput.map(|t| match t {
        Throughput::Elements(n) | Throughput::Bytes(n) => n,
    });
    let per_second = elems.map(|n| n as f64 / (median.as_secs_f64().max(1e-12)));
    match per_second {
        Some(rate) => println!(
            "  {id}: {} samples, min {min:?}, median {median:?}, mean {mean:?}, {rate:.0} elems/s",
            sorted.len()
        ),
        None => println!(
            "  {id}: {} samples, min {min:?}, median {median:?}, mean {mean:?}",
            sorted.len()
        ),
    }
    record_extra(BenchRecord {
        id,
        samples: sorted.len(),
        min_ns: min.as_nanos(),
        median_ns: median.as_nanos(),
        mean_ns: mean.as_nanos(),
        throughput: elems,
        per_second,
        batch_width: None,
    });
}

/// Top-level bench context, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        println!("bench {id}");
        run_bench(id.to_string(), DEFAULT_SAMPLES, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: std::fmt::Display>(&mut self, name: S) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// Group handle, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_bench(
            format!("{}/{id}", self.name),
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_min_median_mean() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("t");
        g.sample_size(5).throughput(Throughput::Elements(1000));
        g.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..10_000 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            });
        });
        g.finish();
        let recs = records();
        let r = recs.iter().find(|r| r.id == "t/spin").expect("recorded");
        assert_eq!(r.samples, 5);
        assert!(r.min_ns > 0 && r.min_ns <= r.median_ns);
        assert!(r.per_second.expect("throughput set") > 0.0);
        let json = render_json();
        assert!(json.contains("\"t/spin\""));
    }
}
