//! Hermetic stand-in for `criterion`.
//!
//! Each `bench_function` executes its body once and prints the wall time —
//! enough to smoke-test the bench targets (and regenerate the figure
//! artifacts their setup code prints) in an offline environment without the
//! statistical machinery of real criterion.
#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to bench bodies.
pub struct Bencher;

impl Bencher {
    /// Runs the routine once, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let dt = start.elapsed();
        println!("      once in {dt:?}");
    }
}

/// Top-level bench context, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a single named benchmark once.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        println!("bench {id}");
        f(&mut Bencher);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: std::fmt::Display>(&mut self, name: S) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup
    }
}

/// Group handle, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup;

impl BenchmarkGroup {
    /// Accepted and ignored (single-run stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored (single-run stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a single named benchmark once.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        println!("  bench {id}");
        f(&mut Bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
