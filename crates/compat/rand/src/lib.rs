//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships this minimal, API-compatible subset of `rand` 0.8:
//! the `RngCore`/`SeedableRng`/`Rng` traits and a deterministic
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64 — the same
//! generator family real `rand` 0.8 uses on 64-bit targets).
//!
//! Only the surface this workspace actually exercises is provided:
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! half-open/inclusive ranges, and `Rng::gen_bool`. Streams are
//! deterministic per seed, which is exactly what the simulator wants.
#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core of every generator: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a float uniform in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small fast generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: usize = (0..64)
            .filter(|_| SmallRng::seed_from_u64(9).gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(same < 32, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u16..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(5usize..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
