//! Hermetic stand-in for `signal-hook`, reduced to the one entry point the
//! workspace needs: [`flag::register`] — "set this `AtomicBool` when the
//! process receives that signal" — so `noc-serve` can drain gracefully on
//! SIGTERM/SIGINT instead of dying mid-job.
//!
//! This is the single compat crate that cannot be written in safe Rust:
//! installing a handler requires the POSIX `signal(2)` API, declared here
//! directly (no `libc` dependency — the build environment is hermetic).
//! The unsafe surface is deliberately tiny and audited by
//! `scripts/lint_audit.sh`:
//!
//! * one `extern "C"` declaration of `signal`;
//! * one `unsafe` block performing the registration call.
//!
//! The handler itself is async-signal-safe: it performs exactly one
//! relaxed atomic store into a pre-registered static slot — no allocation,
//! no locking, no formatting. Flags are registered once per signal; a
//! second `register` for the same signal swaps the observed flag (last
//! registration wins), which is all the server needs.
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Signal numbers (Linux/x86-64 values, which is what this workspace
/// targets; identical on every platform the repo's CI runs).
pub mod consts {
    /// Termination request (`kill <pid>`, container stop).
    pub const SIGTERM: i32 = 15;
    /// Keyboard interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
}

/// Highest signal number a slot exists for. Covers every standard signal.
const MAX_SIGNAL: usize = 64;

/// One write-once slot per signal. `OnceLock<Arc<AtomicBool>>::get` is
/// lock-free after initialization, so reading it inside the handler is
/// async-signal-safe.
static SLOTS: [OnceLock<Arc<AtomicBool>>; MAX_SIGNAL] = [const { OnceLock::new() }; MAX_SIGNAL];

/// The installed C handler: a single relaxed store, nothing else.
extern "C" fn set_flag_handler(sig: i32) {
    if let Some(slot) = SLOTS.get(sig as usize) {
        if let Some(flag) = slot.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }
}

type SigHandler = extern "C" fn(i32);

extern "C" {
    /// POSIX `signal(2)`. Returns the previous handler, or `SIG_ERR`
    /// (`usize::MAX` as a function pointer) on failure.
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

/// Mirror of `signal_hook::flag`.
pub mod flag {
    use super::*;

    /// Arranges for `flag` to be set to `true` when the process receives
    /// `signal` (use the constants in [`crate::consts`]). Mirrors
    /// `signal_hook::flag::register`; the handle it returns in the real
    /// crate is dropped here — registrations are process-lifetime.
    pub fn register(signum: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
        let slot = SLOTS
            .get(signum as usize)
            .filter(|_| signum > 0)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("signal {signum} out of range"),
                )
            })?;
        if slot.set(Arc::clone(&flag)).is_err() {
            // Already registered: the new flag replaces nothing (OnceLock
            // is write-once) — chain instead by observing the first flag.
            // In practice the server registers each signal exactly once.
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("signal {signum} already has a registered flag"),
            ));
        }
        // SAFETY: `signal` is the POSIX registration call; the handler we
        // install is async-signal-safe (one atomic store into a static,
        // write-once slot initialized above, before registration).
        let prev = unsafe { signal(signum, set_flag_handler) };
        if prev == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_rejects_out_of_range_signals() {
        assert!(flag::register(0, Arc::new(AtomicBool::new(false))).is_err());
        assert!(flag::register(-3, Arc::new(AtomicBool::new(false))).is_err());
        assert!(flag::register(10_000, Arc::new(AtomicBool::new(false))).is_err());
    }

    #[test]
    fn raised_signal_sets_the_flag() {
        // SIGUSR1 = 10 on Linux; raise it at ourselves via kill(2)... which
        // we do not declare. Instead drive the handler directly — the
        // registration path is exercised, then the handler invoked as the
        // kernel would.
        let flag = Arc::new(AtomicBool::new(false));
        flag::register(10, Arc::clone(&flag)).expect("register SIGUSR1");
        assert!(!flag.load(Ordering::Relaxed));
        set_flag_handler(10);
        assert!(flag.load(Ordering::Relaxed));
        // Double registration for the same signal is refused, not UB.
        assert!(flag::register(10, Arc::new(AtomicBool::new(false))).is_err());
    }
}
