//! Cooperative cancellation for parallel regions and long-running jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! controller (a job service, a drain path, a deadline timer) and the code
//! doing the work. Cancellation is *cooperative*: nothing is interrupted
//! preemptively — workers observe the token at their own safe points
//! (between sweep datapoints, between watchdog slices) and unwind cleanly.
//!
//! Two triggers share one latch:
//!
//! * [`CancelToken::cancel`] — an explicit request (user cancel, graceful
//!   drain);
//! * a **deadline** ([`CancelToken::set_deadline`]) — the first
//!   [`CancelToken::is_cancelled`] call at or past the deadline latches the
//!   token exactly as if `cancel()` had been called, with
//!   [`CancelReason::DeadlineExceeded`].
//!
//! Whichever fires first wins; the reason is recorded once and never
//! changes, so every observer reports the same cause. The latched state is
//! also mirrored into a plain `AtomicBool` ([`CancelToken::flag`]) that the
//! region scheduler polls lock-free between task claims.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Why a token fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The deadline set by [`CancelToken::set_deadline`] passed.
    DeadlineExceeded,
    /// The storage layer reported persistent write failure; work parked
    /// with its rows intact rather than continuing unpersisted. Produced
    /// by job code that observes the failure directly — there is no token
    /// trigger for it, so a shared service token is never latched by a
    /// storage interrupt.
    StorageDegraded,
}

const REASON_NONE: u8 = 0;
const REASON_CANCELLED: u8 = 1;
const REASON_DEADLINE: u8 = 2;
const REASON_STORAGE: u8 = 3;

#[derive(Default)]
struct Inner {
    /// The latch the region scheduler polls between claims. Set exactly
    /// once, by whichever trigger fires first. Behind its own `Arc` so
    /// [`CancelToken::flag`] can hand schedulers a lock-free handle that
    /// does not drag the deadline mutex along.
    fired: Arc<AtomicBool>,
    /// First-writer-wins reason code.
    reason: AtomicU8,
    /// Optional deadline; checked (and latched) by `is_cancelled`.
    deadline: Mutex<Option<Instant>>,
}

/// Shared cooperative-cancellation handle. Clones observe the same latch.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh, unfired token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; a later deadline expiry cannot
    /// overwrite the reason.
    pub fn cancel(&self) {
        self.latch(REASON_CANCELLED);
    }

    /// Requests cancellation because storage went read-only mid-run. Only
    /// for tokens owned by a single run attempt — latching a token shared
    /// across retries would poison the eventual resume.
    pub fn cancel_storage_degraded(&self) {
        self.latch(REASON_STORAGE);
    }

    /// Arms (or re-arms) the deadline. The token fires on the first
    /// [`is_cancelled`](CancelToken::is_cancelled) check at or past `at`.
    pub fn set_deadline(&self, at: Instant) {
        *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(at);
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// True once the token has fired (explicitly or by deadline). This is
    /// the observation point: an expired deadline latches here.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.fired.load(Ordering::Acquire) {
            return true;
        }
        let expired = self.deadline().is_some_and(|d| Instant::now() >= d);
        if expired {
            self.latch(REASON_DEADLINE);
        }
        expired
    }

    /// Why the token fired; `None` while it has not.
    pub fn reason(&self) -> Option<CancelReason> {
        // Observe (and possibly latch) an expired deadline first.
        let _ = self.is_cancelled();
        match self.inner.reason.load(Ordering::Acquire) {
            REASON_CANCELLED => Some(CancelReason::Cancelled),
            REASON_DEADLINE => Some(CancelReason::DeadlineExceeded),
            REASON_STORAGE => Some(CancelReason::StorageDegraded),
            _ => None,
        }
    }

    /// The raw latch, for lock-free polling inside schedulers (see
    /// [`crate::region::Region::with_cancel`]). The flag only ever goes
    /// `false → true`; an expired-but-unobserved deadline is *not* visible
    /// here until some caller runs [`is_cancelled`](Self::is_cancelled).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.fired)
    }

    fn latch(&self, code: u8) {
        let _ = self.inner.reason.compare_exchange(
            REASON_NONE,
            code,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.inner.fired.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_latches_with_reason() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_latches_on_observation() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn first_trigger_wins() {
        let t = CancelToken::new();
        t.cancel();
        t.set_deadline(Instant::now() - Duration::from_secs(1));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn clones_share_the_latch() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn storage_degraded_latches_with_reason() {
        let t = CancelToken::new();
        t.cancel_storage_degraded();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::StorageDegraded));
        // First trigger still wins.
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::StorageDegraded));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }
}
