//! Hermetic stand-in for `rayon`: a real `std::thread` parallel executor.
//!
//! `par_iter()` / `into_par_iter()` return lazy parallel iterators whose
//! adapter chains (`map`, `flat_map`, `enumerate`, `collect`, ...) execute
//! on a pool of worker threads while preserving sequential order exactly:
//!
//! * **Decomposition.** Every chain decomposes into an ordered list of
//!   independent *tasks*, each producing exactly one output item (sources
//!   emit one task per element; `map` wraps 1:1; `flat_map` expands eagerly
//!   on the orchestrating thread, so its *inner* items become first-class
//!   tasks). The task index therefore *is* the global item index — which is
//!   what makes `enumerate` exact and `collect` order-preserving.
//! * **Execution.** Tasks are pulled by index from a shared queue
//!   (self-scheduling, so uneven task costs balance automatically) and
//!   their results land in per-index slots; `collect` reads the slots in
//!   order. Results are bit-identical to a sequential run for any worker
//!   count, because tasks share no state.
//! * **Pool sizing.** A global token pool bounds total concurrency across
//!   *nested* parallel regions: the process-wide budget is `NOC_THREADS`
//!   (or `available_parallelism`), each region borrows up to its task
//!   count, and inner regions fall back to sequential execution when the
//!   budget is exhausted. `NOC_THREADS=1` yields zero extra workers —
//!   strictly sequential execution, identical to the old sequential shim.
//! * **Panics.** A panicking task aborts the region promptly; the first
//!   panic payload is re-thrown on the calling thread (like real rayon).
//!
//! Workers are scoped threads spawned per parallel region. Spawn cost
//! (~tens of microseconds) is negligible at this workspace's granularity —
//! one task is one simulated design point, i.e. milliseconds to minutes.
#![forbid(unsafe_code)]

pub mod cancel;
pub mod region;

pub use cancel::{CancelReason, CancelToken};
use region::{Region, Task};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock, PoisonError};

// ---------------------------------------------------------------------------
// Global worker-token pool.
// ---------------------------------------------------------------------------

struct PoolState {
    /// Configured parallelism (the caller's thread counts as one).
    threads: usize,
    /// Worker tokens currently available to parallel regions. May go
    /// negative transiently after `set_num_threads` shrinks the pool while
    /// regions are in flight.
    available: isize,
}

static POOL: OnceLock<Mutex<PoolState>> = OnceLock::new();

/// Validates a positive-count environment value (`NOC_THREADS`-style knob;
/// also reused for `NOC_BATCH_WIDTH`).
///
/// `Ok(None)` when the variable is unset or empty (empty means "use the
/// default", so `NOC_THREADS= cmd` behaves like an unset variable). Any
/// non-empty value must be an integer ≥ 1: `0` and garbage are *errors*,
/// never a silent fallback to the default.
pub fn parse_threads_env(name: &str, val: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = val else { return Ok(None) };
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    match t.parse::<usize>() {
        Ok(0) => Err(format!(
            "{name}={raw:?}: count must be at least 1 (use 1 to disable \
             parallelism or batching, or unset the variable for the default)"
        )),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "{name}={raw:?}: not a positive integer (unset the variable for \
             the default)"
        )),
    }
}

/// Reads and validates `NOC_THREADS`. `Ok(None)` when unset.
pub fn env_threads() -> Result<Option<usize>, String> {
    parse_threads_env("NOC_THREADS", std::env::var("NOC_THREADS").ok().as_deref())
}

fn pool() -> &'static Mutex<PoolState> {
    POOL.get_or_init(|| {
        let threads = env_threads()
            .unwrap_or_else(|e| panic!("invalid thread configuration: {e}"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Mutex::new(PoolState {
            threads,
            available: threads as isize - 1,
        })
    })
}

fn lock_pool() -> std::sync::MutexGuard<'static, PoolState> {
    pool().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The configured parallelism (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    lock_pool().threads
}

/// Reconfigures the worker budget at runtime (clamped to ≥ 1). Unlike real
/// rayon this is always allowed: the token pool adjusts immediately and
/// regions already running keep the workers they borrowed.
pub fn set_num_threads(n: usize) {
    let n = n.max(1);
    let mut st = lock_pool();
    st.available += n as isize - st.threads as isize;
    st.threads = n;
}

fn claim_workers(want: usize) -> usize {
    let mut st = lock_pool();
    let grant = want.min(st.available.max(0) as usize);
    st.available -= grant as isize;
    grant
}

fn release_workers(n: usize) {
    lock_pool().available += n as isize;
}

/// Returns borrowed worker tokens on drop (panic-safe).
struct WorkerTokens(usize);

impl Drop for WorkerTokens {
    fn drop(&mut self) {
        release_workers(self.0);
    }
}

// ---------------------------------------------------------------------------
// Panic isolation.
// ---------------------------------------------------------------------------

/// Extracts a human-readable message from a panic payload (`panic!` with a
/// `String` or `&str`; anything else gets a generic description).
pub fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(message)` instead of unwinding.
///
/// This is the isolation primitive for crash-resilient sweep runners: one
/// wedged or asserting datapoint becomes a recorded failure, not a lost run.
pub fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p))
}

// ---------------------------------------------------------------------------
// Ordered task execution.
// ---------------------------------------------------------------------------

/// Runs `tasks` to completion, returning their results in task order.
///
/// Borrows up to `tasks.len() - 1` workers from the global pool; the calling
/// thread always participates, so a region makes progress even when the pool
/// is exhausted (in which case execution is plain sequential, in order).
fn run_tasks<'s, T: Send + 's>(tasks: Vec<Task<'s, T>>) -> Vec<T> {
    let n = tasks.len();
    if n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let workers = claim_workers(n - 1);
    let _tokens = WorkerTokens(workers);
    if workers == 0 {
        return tasks.into_iter().map(|t| t()).collect();
    }

    // The queue/slots/abort state machine lives in `region`; this shell
    // only decides *who* drives it (scoped threads here; the schedule
    // explorer in tests/schedules.rs drives the same machine
    // deterministically). Workers return panic payloads instead of
    // unwinding so the caller re-throws exactly one panic after joining.
    let region = Region::new(tasks);
    let mut payload: Option<region::Payload> = None;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers).map(|_| s.spawn(|| region.worker())).collect();
        payload = region.worker();
        for h in handles {
            match h.join() {
                Ok(Some(p)) | Err(p) => {
                    if payload.is_none() {
                        payload = Some(p);
                    }
                }
                Ok(None) => {}
            }
        }
    });

    if let Some(p) = payload {
        resume_unwind(p);
    }
    region.into_results()
}

/// Runs `f` over every item on the pool, stopping cooperatively when
/// `token` fires: items not yet claimed are dropped, items already claimed
/// run to completion. The cancellation point is the region's claim loop —
/// the token is checked before every task hand-out, on the sequential
/// fallback path too, so a fired token stops a region of any width at task
/// granularity.
///
/// Panics still propagate like [`iter::ParallelIterator::for_each`]: the
/// first payload is re-thrown on the calling thread after the region winds
/// down. Cancellation itself is silent — callers that need to distinguish
/// "ran out of work" from "was cancelled" ask the token.
pub fn for_each_cancellable<T, F>(items: Vec<T>, token: &CancelToken, f: F)
where
    T: Send,
    F: Fn(T) + Send + Sync,
{
    let tasks: Vec<Task<'_, ()>> = items
        .into_iter()
        .map(|x| {
            let f = &f;
            Box::new(move || f(x)) as Task<'_, ()>
        })
        .collect();
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let workers = if n == 1 { 0 } else { claim_workers(n - 1) };
    let _tokens = WorkerTokens(workers);
    let region = Region::new(tasks).with_cancel(token.flag());
    if workers == 0 {
        // Sequential fallback: the same claim loop, driven inline.
        if let Some(p) = region.worker() {
            resume_unwind(p);
        }
        return;
    }
    let mut payload: Option<region::Payload> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers).map(|_| s.spawn(|| region.worker())).collect();
        payload = region.worker();
        for h in handles {
            match h.join() {
                Ok(Some(p)) | Err(p) => {
                    if payload.is_none() {
                        payload = Some(p);
                    }
                }
                Ok(None) => {}
            }
        }
    });
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

// ---------------------------------------------------------------------------
// Parallel iterator API.
// ---------------------------------------------------------------------------

pub mod iter {
    use super::{run_tasks, Task};
    use std::sync::Arc;

    /// A lazily-composed parallel computation over `'s`-scoped data.
    ///
    /// The lifetime parameter scopes borrowed sources (e.g. `par_iter` on a
    /// slice); owned chains are free to pick any lifetime.
    pub trait ParallelIterator<'s>: Sized + Send + 's {
        /// The element type.
        type Item: Send + 's;

        /// Decomposes the chain into ordered single-item tasks. Called on
        /// the orchestrating thread; the tasks run on pool workers.
        fn into_tasks(self) -> Vec<Task<'s, Self::Item>>;

        /// Parallel map, mirroring `rayon::iter::ParallelIterator::map`.
        fn map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Send + 's,
            F: Fn(Self::Item) -> U + Send + Sync + 's,
        {
            Map { base: self, f }
        }

        /// Parallel flat-map. The outer closure runs *eagerly on the
        /// orchestrating thread* (it is expected to be cheap — it builds
        /// the inner iterators); the inner items become parallel tasks.
        fn flat_map<PI, F>(self, f: F) -> FlatMap<Self, F>
        where
            PI: ParallelIterator<'s>,
            F: Fn(Self::Item) -> PI + Send + Sync + 's,
        {
            FlatMap { base: self, f }
        }

        /// Pairs every item with its global index (exact, because tasks are
        /// 1:1 with items).
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Runs `f` over every item on the pool (order of side effects is
        /// unspecified, as with real rayon).
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Send + Sync + 's,
        {
            let _: Vec<()> = self.map(f).collect();
        }

        /// Executes the chain and collects the results **in order**.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            run_tasks(self.into_tasks()).into_iter().collect()
        }
    }

    /// Parallel iterator over `&'a [T]` (the `par_iter` source).
    pub struct SlicePar<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator<'a> for SlicePar<'a, T> {
        type Item = &'a T;

        fn into_tasks(self) -> Vec<Task<'a, &'a T>> {
            self.slice
                .iter()
                .map(|r| Box::new(move || r) as Task<'a, &'a T>)
                .collect()
        }
    }

    /// Parallel iterator over an owned collection (the `into_par_iter`
    /// source). Elements are moved into their tasks up front.
    pub struct IntoPar<I>(I);

    impl<'s, I> ParallelIterator<'s> for IntoPar<I>
    where
        I: IntoIterator + Send + 's,
        I::Item: Send + 's,
    {
        type Item = I::Item;

        fn into_tasks(self) -> Vec<Task<'s, I::Item>> {
            self.0
                .into_iter()
                .map(|x| Box::new(move || x) as Task<'s, I::Item>)
                .collect()
        }
    }

    /// See [`ParallelIterator::map`].
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<'s, I, F, U> ParallelIterator<'s> for Map<I, F>
    where
        I: ParallelIterator<'s>,
        U: Send + 's,
        F: Fn(I::Item) -> U + Send + Sync + 's,
    {
        type Item = U;

        fn into_tasks(self) -> Vec<Task<'s, U>> {
            let f = Arc::new(self.f);
            self.base
                .into_tasks()
                .into_iter()
                .map(|t| {
                    let f = Arc::clone(&f);
                    Box::new(move || f(t())) as Task<'s, U>
                })
                .collect()
        }
    }

    /// See [`ParallelIterator::flat_map`].
    pub struct FlatMap<I, F> {
        base: I,
        f: F,
    }

    impl<'s, I, PI, F> ParallelIterator<'s> for FlatMap<I, F>
    where
        I: ParallelIterator<'s>,
        PI: ParallelIterator<'s>,
        F: Fn(I::Item) -> PI + Send + Sync + 's,
    {
        type Item = PI::Item;

        fn into_tasks(self) -> Vec<Task<'s, PI::Item>> {
            let f = self.f;
            self.base
                .into_tasks()
                .into_iter()
                .flat_map(|t| f(t()).into_tasks())
                .collect()
        }
    }

    /// See [`ParallelIterator::enumerate`].
    pub struct Enumerate<I> {
        base: I,
    }

    impl<'s, I: ParallelIterator<'s>> ParallelIterator<'s> for Enumerate<I> {
        type Item = (usize, I::Item);

        fn into_tasks(self) -> Vec<Task<'s, (usize, I::Item)>> {
            self.base
                .into_tasks()
                .into_iter()
                .enumerate()
                .map(|(i, t)| Box::new(move || (i, t())) as Task<'s, (usize, I::Item)>)
                .collect()
        }
    }

    /// Stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator<'s> {
        /// The parallel iterator type.
        type Iter: ParallelIterator<'s, Item = Self::Item>;
        /// The element type.
        type Item: Send + 's;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<'s, I> IntoParallelIterator<'s> for I
    where
        I: IntoIterator + Send + 's,
        I::Item: Send + 's,
    {
        type Iter = IntoPar<I>;
        type Item = I::Item;

        fn into_par_iter(self) -> IntoPar<I> {
            IntoPar(self)
        }
    }

    /// Stand-in for `rayon::iter::IntoParallelRefIterator`. Implemented for
    /// `[T]`; `Vec<T>` and arrays reach it through deref / unsize coercion.
    pub trait IntoParallelRefIterator<'a> {
        /// The parallel iterator type.
        type Iter: ParallelIterator<'a, Item = Self::Item>;
        /// The element type (a reference).
        type Item: Send + 'a;
        /// Returns a parallel iterator over borrowed elements.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = SlicePar<'a, T>;
        type Item = &'a T;

        fn par_iter(&'a self) -> SlicePar<'a, T> {
            SlicePar { slice: self }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let flat: Vec<(usize, i32)> = v
            .par_iter()
            .enumerate()
            .flat_map(|(i, &x)| [(i, x)].into_par_iter())
            .collect();
        assert_eq!(flat.len(), 4);
        assert_eq!(flat[3], (3, 4));
    }

    #[test]
    fn order_is_preserved_under_skewed_task_costs() {
        // Early tasks sleep longest: with self-scheduling workers, late
        // tasks finish first — collect must still return source order.
        let input: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = input
            .par_iter()
            .map(|&i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5 - i as u64));
                }
                i * 10
            })
            .collect();
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_are_global_and_exact() {
        let v: Vec<u32> = (0..100).collect();
        let out: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x + 1)).collect();
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, i as u32 + 1);
        }
    }

    #[test]
    fn flat_map_preserves_nested_order() {
        // The table3 shape: outer par over meshes, inner into_par_iter.
        let ks = [8u32, 16, 32];
        let out: Vec<(u32, u32)> = ks
            .par_iter()
            .flat_map(|&k| [1u32, 2].into_par_iter().map(move |s| (k, s)))
            .map(|(k, s)| (k, s * 100))
            .collect();
        assert_eq!(
            out,
            vec![
                (8, 100),
                (8, 200),
                (16, 100),
                (16, 200),
                (32, 100),
                (32, 200)
            ]
        );
    }

    #[test]
    fn nested_regions_share_the_token_budget() {
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<usize> = (0..8).collect();
                let v: Vec<usize> = inner.par_iter().map(|&i| o * 8 + i).collect();
                v.into_iter().sum()
            })
            .collect();
        let expect: Vec<usize> = (0..8).map(|o| (0..8).map(|i| o * 8 + i).sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let v: Vec<usize> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            let _: Vec<usize> = v
                .par_iter()
                .map(|&i| {
                    assert!(i != 17, "task seventeen exploded");
                    i
                })
                .collect();
        });
        let payload = r.expect_err("panic must propagate out of collect");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("task seventeen exploded"), "payload: {msg}");
    }

    #[test]
    fn tokens_are_returned_after_panics() {
        // A panicking region must not leak worker tokens: a later region
        // still completes (and, with tokens restored, may run in parallel).
        let v: Vec<usize> = (0..16).collect();
        for _ in 0..3 {
            let _ = std::panic::catch_unwind(|| {
                let _: Vec<usize> = v.par_iter().map(|_| panic!("boom")).collect();
            });
        }
        let ok: Vec<usize> = v.par_iter().map(|&i| i + 1).collect();
        assert_eq!(ok.len(), 16);
        // All borrowed tokens drain back eventually (other tests may hold
        // some transiently — cargo runs tests concurrently).
        let full = super::current_num_threads() as isize - 1;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while super::lock_pool().available < full {
            assert!(std::time::Instant::now() < deadline, "tokens leaked");
            std::thread::yield_now();
        }
    }

    #[test]
    fn parse_threads_env_accepts_valid_and_rejects_garbage() {
        use super::parse_threads_env as p;
        assert_eq!(p("NOC_THREADS", None), Ok(None));
        assert_eq!(p("NOC_THREADS", Some("")), Ok(None));
        assert_eq!(p("NOC_THREADS", Some("  ")), Ok(None));
        assert_eq!(p("NOC_THREADS", Some("1")), Ok(Some(1)));
        assert_eq!(p("NOC_THREADS", Some(" 8 ")), Ok(Some(8)));
        let zero = p("NOC_THREADS", Some("0")).unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");
        let junk = p("NOC_THREADS", Some("four")).unwrap_err();
        assert!(junk.contains("not a positive integer"), "{junk}");
        assert!(p("NOC_THREADS", Some("-2")).is_err());
        assert!(p("NOC_THREADS", Some("3.5")).is_err());
    }

    #[test]
    fn catch_panic_isolates_and_reports() {
        assert_eq!(super::catch_panic(|| 42), Ok(42));
        let msg = super::catch_panic(|| -> u32 { panic!("point {} wedged", 7) }).unwrap_err();
        assert_eq!(msg, "point 7 wedged");
        let msg = super::catch_panic(|| -> u32 { std::panic::panic_any("static str") });
        assert_eq!(msg, Err("static str".to_string()));
    }

    #[test]
    fn for_each_cancellable_runs_everything_with_a_quiet_token() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let token = super::CancelToken::new();
        super::for_each_cancellable((0..50).collect(), &token, |_: usize| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn for_each_cancellable_stops_claiming_after_the_token_fires() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // The third executed item cancels; with any worker count, items not
        // yet claimed at that point must never run.
        let count = AtomicUsize::new(0);
        let token = super::CancelToken::new();
        super::for_each_cancellable((0..10_000).collect(), &token, |_: usize| {
            if count.fetch_add(1, Ordering::Relaxed) + 1 == 3 {
                token.cancel();
            }
        });
        let ran = count.load(Ordering::Relaxed);
        assert!(ran >= 3, "the cancelling item itself ran: {ran}");
        // In-flight claims may finish, but the bulk of the queue must not:
        // a full run would be 10_000.
        assert!(ran < 10_000, "cancellation did not stop the region");
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(super::CancelReason::Cancelled));
    }

    #[test]
    fn for_each_cancellable_with_prefired_token_runs_nothing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let token = super::CancelToken::new();
        token.cancel();
        super::for_each_cancellable((0..64).collect(), &token, |_: usize| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn for_each_cancellable_still_propagates_panics() {
        let token = super::CancelToken::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            super::for_each_cancellable((0..8).collect(), &token, |i: usize| {
                assert!(i != 5, "item five exploded");
            });
        }));
        let payload = r.expect_err("panic must propagate");
        let msg = super::panic_message(&*payload);
        assert!(msg.contains("item five exploded"), "payload: {msg}");
    }

    #[test]
    fn deadline_tokens_cancel_regions() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let token = super::CancelToken::new();
        token.set_deadline(std::time::Instant::now());
        // The latch is only mirrored on observation; observe once like a
        // cooperative worker would.
        assert!(token.is_cancelled());
        super::for_each_cancellable((0..64).collect(), &token, |_: usize| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        assert_eq!(token.reason(), Some(super::CancelReason::DeadlineExceeded));
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        let v: Vec<usize> = (0..100).collect();
        v.par_iter().for_each(|&i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
