//! Hermetic stand-in for `rayon`.
//!
//! `par_iter()` / `into_par_iter()` are provided as extension methods that
//! return the ordinary sequential `std` iterators, so every adapter chain
//! (`map`, `flat_map`, `enumerate`, `collect`, ...) compiles and runs
//! unchanged — just single-threaded. Results are therefore deterministic and
//! identical to what real rayon would produce for the order-preserving
//! adapters this workspace uses.
#![forbid(unsafe_code)]

pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Returns a sequential iterator in place of a parallel one.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The (sequential) borrowing iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (a reference).
        type Item;
        /// Returns a sequential borrowing iterator in place of a parallel one.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let flat: Vec<(usize, i32)> = v
            .par_iter()
            .enumerate()
            .flat_map(|(i, &x)| [(i, x)].into_par_iter())
            .collect();
        assert_eq!(flat.len(), 4);
        assert_eq!(flat[3], (3, 4));
    }
}
