//! The parallel-region core: a shared task queue + result slots driven by
//! explicit, individually-atomic operations.
//!
//! This is the executor's engine room, factored out of the thread-spawning
//! shell so that two very different drivers can run the *same* state
//! machine:
//!
//! * the production path (`run_tasks`) hands [`Region::worker`] to scoped
//!   threads, where the operations interleave however the OS schedules
//!   them;
//! * the schedule-exploring race detector (`tests/schedules.rs`)
//!   enumerates bounded interleavings of the operations *deterministically*
//!   and asserts the region's invariants — ordered collection, no double
//!   claim, panic propagation, abort promptness — under every one of them.
//!
//! The schedule points are the public methods: [`Region::claim`] (one
//! atomic fetch-add, preceded by an abort check) and [`Region::execute`]
//! (take the task, run it, store the result or flag the abort). Each
//! method is internally synchronized, so a concurrent history of the
//! region is equivalent to *some* sequential interleaving of these
//! operations — which is exactly the space the race detector explores.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A deferred unit of work producing exactly one output item.
pub type Task<'s, T> = Box<dyn FnOnce() -> T + Send + 's>;

/// A panic payload carried out of a task.
pub type Payload = Box<dyn std::any::Any + Send>;

/// Outcome of [`Region::claim`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Claim {
    /// The caller now owns task `i` and must [`Region::execute`] it.
    Task(usize),
    /// Every task has been claimed; the worker is done.
    Exhausted,
    /// The region must stop: a task panicked, or an attached cancellation
    /// latch fired. The worker must stop without claiming.
    Aborted,
}

/// One parallel region: `n` ordered tasks, `n` result slots, a claim
/// cursor and an abort flag.
pub struct Region<'s, T> {
    queue: Vec<Mutex<Option<Task<'s, T>>>>,
    slots: Vec<Mutex<Option<T>>>,
    next: AtomicUsize,
    abort: AtomicBool,
    /// Optional external cancellation latch (a [`crate::CancelToken`]
    /// flag). When it fires, [`Region::claim`] stops handing out tasks —
    /// already-claimed tasks run to completion, unclaimed ones are dropped.
    /// `None` (the default) preserves the original run-everything contract,
    /// including `into_results`' every-slot-filled guarantee.
    cancel: Option<Arc<AtomicBool>>,
}

impl<'s, T: Send + 's> Region<'s, T> {
    /// Wraps `tasks` into a ready-to-run region.
    pub fn new(tasks: Vec<Task<'s, T>>) -> Region<'s, T> {
        let n = tasks.len();
        Region {
            queue: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            cancel: None,
        }
    }

    /// Attaches an external cancellation latch. Callers that do so give up
    /// [`Region::into_results`] (cancelled regions leave slots unfilled)
    /// and must consume side effects only — see
    /// [`crate::for_each_cancellable`].
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True once the attached cancellation latch (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Number of tasks in the region.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when the region has no tasks.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True once some task has panicked.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Claims the next unclaimed task index. The fetch-add hands every
    /// index to exactly one caller — the no-double-claim property the race
    /// detector certifies.
    pub fn claim(&self) -> Claim {
        if self.aborted() || self.cancelled() {
            return Claim::Aborted;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= self.queue.len() {
            Claim::Exhausted
        } else {
            Claim::Task(i)
        }
    }

    /// Runs claimed task `i`: stores its result in slot `i`, or flags the
    /// abort and returns the panic payload.
    pub fn execute(&self, i: usize) -> Option<Payload> {
        let task = self.queue[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("task claimed twice");
        match catch_unwind(AssertUnwindSafe(task)) {
            Ok(v) => {
                *self.slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                None
            }
            Err(p) => {
                self.abort.store(true, Ordering::Relaxed);
                Some(p)
            }
        }
    }

    /// The worker loop the production threads run: claim and execute until
    /// the queue drains or a panic (this worker's or another's) stops the
    /// region. Returns the payload if *this* worker's task panicked, so the
    /// caller can re-throw exactly one panic after joining every thread.
    pub fn worker(&self) -> Option<Payload> {
        loop {
            match self.claim() {
                Claim::Task(i) => {
                    if let Some(p) = self.execute(i) {
                        return Some(p);
                    }
                }
                Claim::Exhausted | Claim::Aborted => return None,
            }
        }
    }

    /// Consumes the region and returns the results in task order. Panics
    /// if any slot is unfilled — callers must only reach this after every
    /// task completed without aborting.
    pub fn into_results(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every task stores its slot")
            })
            .collect()
    }
}
