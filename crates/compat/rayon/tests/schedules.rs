//! A mini-loom for the parallel-region core: exhaustively enumerates
//! bounded interleavings of the region's schedule points and asserts its
//! invariants under every single one.
//!
//! The region's operations ([`Claim`][rayon::region::Claim] and execute)
//! are each internally synchronized, so any concurrent history is
//! equivalent to some sequential interleaving of them (op-level
//! atomicity). The explorer therefore models W workers as little state
//! machines — idle (next op: claim) or holding a task (next op: execute)
//! — and DFS-enumerates every order in which the scheduler could fire
//! their next operations, replaying each schedule from scratch against a
//! fresh region.
//!
//! Invariants certified under *every* schedule:
//!
//! * **No double-claim** — every task index is handed out at most once
//!   (tracked explicitly; `execute` would also panic on a re-take).
//! * **Ordered collect** — when no task panics, `into_results` returns
//!   the results in task order regardless of completion order.
//! * **Panic propagation** — when a task panics, exactly the worker that
//!   ran it receives the payload, and it is the genuine payload.
//! * **Abort promptness** — once the abort flag is set, every subsequent
//!   claim observes it and stops; no new task starts after a panic.

use rayon::region::{Claim, Region, Task};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Worker {
    /// Next operation: `claim`.
    Idle,
    /// Next operation: `execute` the held index.
    Holding(usize),
    /// Saw `Exhausted`/`Aborted` (or returned a payload); no further ops.
    Stopped,
}

/// One deterministic run of the region under an explicit schedule.
struct Run<'s> {
    region: Region<'s, usize>,
    workers: Vec<Worker>,
    /// Panic message received per worker (None = no panic seen).
    payloads: Vec<Option<String>>,
    /// Task indices handed out by `claim`, in schedule order.
    claimed: Vec<usize>,
    /// Task indices whose execute completed without panicking.
    completed: Vec<usize>,
}

fn fresh_region(n_tasks: usize, panic_task: Option<usize>) -> Region<'static, usize> {
    let tasks: Vec<Task<'static, usize>> = (0..n_tasks)
        .map(|i| {
            Box::new(move || {
                assert!(Some(i) != panic_task, "task {i} exploded");
                i * 10
            }) as Task<'static, usize>
        })
        .collect();
    Region::new(tasks)
}

impl Run<'_> {
    fn new(n_tasks: usize, n_workers: usize, panic_task: Option<usize>) -> Run<'static> {
        Run {
            region: fresh_region(n_tasks, panic_task),
            workers: vec![Worker::Idle; n_workers],
            payloads: vec![None; n_workers],
            claimed: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Fires worker `w`'s next operation. Panics on any invariant breach.
    fn step(&mut self, w: usize) {
        match self.workers[w] {
            Worker::Idle => {
                let aborted_before = self.region.aborted();
                match self.region.claim() {
                    Claim::Task(i) => {
                        // Abort promptness: a claim that starts after the
                        // abort flag is set must not hand out work.
                        assert!(
                            !aborted_before,
                            "claim handed out task {i} after the region aborted"
                        );
                        // No double-claim.
                        assert!(
                            !self.claimed.contains(&i),
                            "task {i} claimed twice (schedule gave it to two workers)"
                        );
                        self.claimed.push(i);
                        self.workers[w] = Worker::Holding(i);
                    }
                    Claim::Exhausted | Claim::Aborted => self.workers[w] = Worker::Stopped,
                }
            }
            Worker::Holding(i) => {
                match self.region.execute(i) {
                    None => {
                        self.completed.push(i);
                        self.workers[w] = Worker::Idle;
                    }
                    Some(p) => {
                        // Production workers return on a payload; mirror that.
                        self.payloads[w] = Some(
                            p.downcast_ref::<String>()
                                .cloned()
                                .unwrap_or_else(|| "non-string payload".into()),
                        );
                        self.workers[w] = Worker::Stopped;
                    }
                }
            }
            Worker::Stopped => unreachable!("scheduler fired a stopped worker"),
        }
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&w| self.workers[w] != Worker::Stopped)
            .collect()
    }

    /// Terminal-state invariants, once every worker has stopped.
    fn check_final(self, n_tasks: usize, panic_task: Option<usize>) {
        match panic_task {
            None => {
                assert!(!self.region.aborted(), "clean run must not abort");
                assert_eq!(self.claimed.len(), n_tasks, "every task must run");
                assert_eq!(self.completed.len(), n_tasks);
                // Ordered collect: results in task order no matter the
                // completion order.
                let results = self.region.into_results();
                let expect: Vec<usize> = (0..n_tasks).map(|i| i * 10).collect();
                assert_eq!(results, expect, "collect must preserve task order");
                assert!(self.payloads.iter().all(Option::is_none));
            }
            Some(k) => {
                // The panicking task may or may not have been scheduled
                // before the queue drained — but if it ran, the region
                // aborted and exactly its worker holds the payload.
                let holders: Vec<&String> = self.payloads.iter().flatten().collect();
                if self.claimed.contains(&k) {
                    assert!(self.region.aborted(), "panic must flag the abort");
                    assert_eq!(holders.len(), 1, "exactly one worker gets the payload");
                    assert!(
                        holders[0].contains(&format!("task {k} exploded")),
                        "payload mangled: {}",
                        holders[0]
                    );
                    assert!(!self.completed.contains(&k));
                } else {
                    assert!(holders.is_empty());
                }
                // Never a double-claim, panic or not.
                let mut seen = self.claimed.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), self.claimed.len());
            }
        }
    }
}

/// DFS over all maximal schedules, replaying each prefix from scratch
/// (the region holds `FnOnce` tasks, so state can't be copied or undone).
/// Returns the number of complete schedules explored.
fn explore(n_tasks: usize, n_workers: usize, panic_task: Option<usize>) -> usize {
    fn dfs(
        schedule: &mut Vec<usize>,
        n_tasks: usize,
        n_workers: usize,
        panic_task: Option<usize>,
        count: &mut usize,
    ) {
        let mut run = Run::new(n_tasks, n_workers, panic_task);
        for &w in schedule.iter() {
            run.step(w);
        }
        let runnable = run.runnable();
        if runnable.is_empty() {
            run.check_final(n_tasks, panic_task);
            *count += 1;
            return;
        }
        for w in runnable {
            schedule.push(w);
            dfs(schedule, n_tasks, n_workers, panic_task, count);
            schedule.pop();
        }
    }
    let mut schedule = Vec::new();
    let mut count = 0;
    dfs(&mut schedule, n_tasks, n_workers, panic_task, &mut count);
    count
}

#[test]
fn every_schedule_collects_in_order_two_workers() {
    let n = explore(3, 2, None);
    // Lower bound sanity: the space must be non-trivial, or the detector
    // is vacuous.
    assert!(n > 50, "only {n} schedules explored");
}

#[test]
fn every_schedule_collects_in_order_three_workers() {
    let n = explore(3, 3, None);
    assert!(n > 500, "only {n} schedules explored");
}

#[test]
fn every_schedule_propagates_the_panic() {
    for k in 0..3 {
        let n = explore(3, 2, Some(k));
        // Aborts prune the tree, so panic spaces are smaller than clean
        // ones (12 schedules for a first-task panic under two workers).
        assert!(n > 10, "only {n} schedules explored for panic at {k}");
    }
}

#[test]
fn panic_under_three_workers_still_single_payload() {
    let n = explore(2, 3, Some(0));
    assert!(n > 20, "only {n} schedules explored");
}

#[test]
fn empty_and_single_task_regions_are_degenerate_but_sound() {
    // Two schedules: which worker observes Exhausted first.
    assert_eq!(explore(0, 2, None), 2);
    let n = explore(1, 2, None);
    assert!(n >= 2);
}
