//! Property-based tests (proptest) over the core data structures and
//! invariants: routing legality, seeker-ring coverage, reservation-table
//! algebra, traffic-pattern ranges, and end-to-end conservation.

use proptest::prelude::*;
use seec_repro::seec::SeekerRing;
use seec_repro::sim::routing::{candidates, hop_dir, productive, try_hop_dir, west_first, xy_path};
use seec_repro::sim::ReservationTable;
use seec_repro::traffic::TrafficPattern;
use seec_repro::types::{BaseRouting, Coord, NodeId};

fn coord_strategy(k: u8) -> impl Strategy<Value = Coord> {
    (0..k, 0..k).prop_map(|(x, y)| Coord::new(x, y))
}

proptest! {
    /// Productive candidates always reduce Manhattan distance by one.
    #[test]
    fn productive_moves_strictly_closer(
        from in coord_strategy(16),
        to in coord_strategy(16),
    ) {
        for &d in productive(from, to).as_slice() {
            let next = d.step(from, 16, 16).expect("productive dir left the mesh");
            prop_assert_eq!(next.manhattan(to) + 1, from.manhattan(to));
        }
    }

    /// Every algorithm's candidate set is a subset of the productive set and
    /// is non-empty whenever from != to.
    #[test]
    fn all_algorithms_are_minimal_and_total(
        from in coord_strategy(16),
        to in coord_strategy(16),
        algo_idx in 0usize..4,
    ) {
        let algo = [
            BaseRouting::Xy,
            BaseRouting::WestFirst,
            BaseRouting::ObliviousMinimal,
            BaseRouting::AdaptiveMinimal,
        ][algo_idx];
        let cands = candidates(algo, from, to);
        if from != to {
            prop_assert!(!cands.is_empty(), "{algo:?} has no route {from}->{to}");
        }
        let prod = productive(from, to);
        for &d in cands.as_slice() {
            prop_assert!(prod.contains(d), "{algo:?} proposed unproductive {d}");
        }
    }

    /// Following west-first greedily always terminates in exactly the
    /// Manhattan distance (no livelock, no detour).
    #[test]
    fn west_first_routes_terminate_minimally(
        from in coord_strategy(12),
        to in coord_strategy(12),
    ) {
        let mut cur = from;
        let mut hops = 0u32;
        while cur != to {
            let cands = west_first(cur, to);
            prop_assert!(!cands.is_empty());
            cur = cands.as_slice()[0].step(cur, 12, 12).unwrap();
            hops += 1;
            prop_assert!(hops <= 24, "west-first looped");
        }
        prop_assert_eq!(hops, from.manhattan(to));
    }

    /// XY paths are minimal, connected, and end at the destination.
    #[test]
    fn xy_paths_are_minimal_walks(
        from in coord_strategy(16),
        to in coord_strategy(16),
    ) {
        let path = xy_path(from, to);
        prop_assert_eq!(path.len() as u32, from.manhattan(to));
        let mut prev = from;
        for &c in &path {
            prop_assert_eq!(prev.manhattan(c), 1);
            // hop_dir accepts exactly the neighbours xy_path emits, and the
            // direction it names really performs the step.
            let d = hop_dir(prev, c);
            prop_assert_eq!(try_hop_dir(prev, c), Some(d));
            prop_assert_eq!(d.step(prev, 16, 16), Some(c));
            prev = c;
        }
        if from != to {
            prop_assert_eq!(*path.last().unwrap(), to);
        }
    }

    /// On arbitrary mesh shapes, every algorithm terminates in exactly the
    /// Manhattan distance even under adversarial candidate choice (any
    /// productive pick strictly reduces distance, so the bound is tight).
    #[test]
    fn every_algorithm_terminates_within_manhattan(
        cols in 2u8..12,
        rows in 2u8..12,
        fx in 0u8..12, fy in 0u8..12,
        tx in 0u8..12, ty in 0u8..12,
        algo_idx in 0usize..4,
        choice in 0usize..997,
    ) {
        let algo = [
            BaseRouting::Xy,
            BaseRouting::WestFirst,
            BaseRouting::ObliviousMinimal,
            BaseRouting::AdaptiveMinimal,
        ][algo_idx];
        let from = Coord::new(fx % cols, fy % rows);
        let to = Coord::new(tx % cols, ty % rows);
        let mut cur = from;
        let mut hops = 0u32;
        while cur != to {
            let cands = candidates(algo, cur, to);
            prop_assert!(!cands.is_empty(), "{algo:?} stuck at {cur}->{to}");
            // Adversarial pick: rotate through the candidate set by `choice`.
            let d = cands.as_slice()[(choice + hops as usize) % cands.len()];
            let next = d.step(cur, cols, rows);
            prop_assert!(next.is_some(), "{algo:?} stepped off {cols}x{rows}");
            cur = next.expect("checked above");
            hops += 1;
            prop_assert!(hops <= u32::from(cols) + u32::from(rows), "{algo:?} detoured");
        }
        prop_assert_eq!(hops, from.manhattan(to));
    }

    /// XY is deterministic: exactly one candidate, X-dimension first.
    #[test]
    fn xy_is_deterministic_dimension_ordered(
        from in coord_strategy(16),
        to in coord_strategy(16),
    ) {
        let cands = candidates(BaseRouting::Xy, from, to);
        if from == to {
            prop_assert!(cands.is_empty());
        } else {
            prop_assert_eq!(cands.len(), 1);
            let d = cands.as_slice()[0];
            if from.x != to.x {
                prop_assert!(d == seec_repro::types::Direction::East
                    || d == seec_repro::types::Direction::West);
            }
        }
    }

    /// West-first turn legality: while the destination lies to the west, West
    /// is the only legal direction (the turns the algorithm forbids).
    #[test]
    fn west_first_goes_west_first(
        from in coord_strategy(16),
        to in coord_strategy(16),
    ) {
        let cands = west_first(from, to);
        if to.x < from.x {
            prop_assert_eq!(cands.len(), 1);
            prop_assert_eq!(cands.as_slice()[0], seec_repro::types::Direction::West);
        } else {
            // Destination not west: West never appears.
            prop_assert!(!cands.contains(seec_repro::types::Direction::West));
        }
    }

    /// `try_hop_dir` is total: Some exactly for unit-distance pairs, and the
    /// direction returned inverts to the starting coordinate.
    #[test]
    fn try_hop_dir_characterizes_adjacency(
        a in coord_strategy(16),
        b in coord_strategy(16),
    ) {
        match try_hop_dir(a, b) {
            Some(d) => {
                prop_assert_eq!(a.manhattan(b), 1);
                prop_assert_eq!(d.step(a, 16, 16), Some(b));
                prop_assert_eq!(try_hop_dir(b, a), Some(d.opposite()));
            }
            None => prop_assert_ne!(a.manhattan(b), 1),
        }
    }

    /// The seeker ring is a closed neighbour walk covering all routers, for
    /// any mesh shape.
    #[test]
    fn seeker_ring_covers_everything(cols in 2u8..10, rows in 1u8..10) {
        let ring = SeekerRing::new(cols, rows);
        let n = cols as usize * rows as usize;
        let mut seen = vec![false; n];
        for i in 0..ring.len() {
            seen[ring.at(i).idx()] = true;
            let a = ring.at(i).to_coord(cols);
            let b = ring.at(i + 1).to_coord(cols);
            prop_assert_eq!(a.manhattan(b), 1, "non-adjacent ring step {}->{}", a, b);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Reservation-table algebra: reserved slots are reported busy, disjoint
    /// slots stay free, and pruning removes exactly the expired intervals.
    #[test]
    fn reservation_table_algebra(
        spans in prop::collection::vec((0u64..500, 1u64..6), 1..20),
    ) {
        let mut t = ReservationTable::new();
        let node = NodeId(1);
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        for (start, len) in spans {
            let end = start + len - 1;
            if !t.conflicts(node, 0, start, end) {
                t.reserve(node, 0, start, end);
                accepted.push((start, end));
            }
        }
        for &(a, b) in &accepted {
            prop_assert!(t.is_reserved(node, 0, a));
            prop_assert!(t.is_reserved(node, 0, b));
        }
        // Prune at a midpoint and re-check.
        let cut = 250;
        t.prune(cut);
        for &(a, b) in &accepted {
            if b >= cut {
                prop_assert!(t.is_reserved(node, 0, b.max(cut)));
            } else {
                prop_assert!(!t.is_reserved(node, 0, a));
            }
        }
    }

    /// Every traffic pattern stays on the mesh and never targets the source.
    #[test]
    fn patterns_stay_on_mesh(src in 0u16..64, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for p in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitRotation,
            TrafficPattern::Shuffle,
            TrafficPattern::BitComplement,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbor,
            TrafficPattern::Hotspot,
        ] {
            if let Some(d) = p.dest(NodeId(src), 8, 8, &mut rng) {
                prop_assert!(d.0 < 64);
                prop_assert_ne!(d, NodeId(src));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end conservation at low load: everything injected is delivered
    /// once the pipe drains, for arbitrary seeds and patterns — through the
    /// full engine with SEEC active.
    #[test]
    fn low_load_conservation_with_seec(seed in 0u64..1000, pat_idx in 0usize..4) {
        use seec_repro::seec::SeecMechanism;
        use seec_repro::sim::Sim;
        use seec_repro::traffic::SyntheticWorkload;
        use seec_repro::types::{NetConfig, RoutingAlgo};

        let pattern = TrafficPattern::PAPER[pat_idx];
        let cfg = NetConfig::synth(4, 2)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
            .with_seed(seed);
        let wl = SyntheticWorkload::new(pattern, 0.02, 4, 4, cfg.warmup, seed);
        let mech = SeecMechanism::for_net(&cfg);
        let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
        sim.run(8_000);
        let s = sim.finish();
        prop_assert!(s.injected_packets > 0);
        prop_assert!(
            s.ejected_packets as f64 >= 0.95 * s.injected_packets as f64,
            "seed {}: {} of {} delivered",
            seed,
            s.ejected_packets,
            s.injected_packets
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Wormhole conservation: with shallow VCs and XY routing, everything
    /// injected at low load still arrives, for arbitrary depth and seed.
    #[test]
    fn wormhole_low_load_conservation(depth in 1u8..5, seed in 0u64..500) {
        use seec_repro::sim::{NoMechanism, Sim};
        use seec_repro::traffic::SyntheticWorkload;
        use seec_repro::types::{NetConfig, RoutingAlgo};

        let cfg = NetConfig::synth(4, 2)
            .with_wormhole(depth)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
            .with_seed(seed);
        let wl = SyntheticWorkload::new(
            TrafficPattern::UniformRandom, 0.02, 4, 4, cfg.warmup, seed);
        let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
        sim.run(10_000);
        let s = sim.finish();
        prop_assert!(s.injected_packets > 0);
        prop_assert!(
            s.ejected_packets as f64 >= 0.95 * s.injected_packets as f64,
            "depth {}: {} of {}",
            depth,
            s.ejected_packets,
            s.injected_packets
        );
    }

    /// The FF latency decomposition always sums: buffered + bufferless =
    /// network latency, for every delivered FF packet, across seeds.
    #[test]
    fn ff_latency_decomposition_sums(seed in 0u64..200) {
        use seec_repro::seec::SeecMechanism;
        use seec_repro::sim::Sim;
        use seec_repro::traffic::SyntheticWorkload;
        use seec_repro::types::{NetConfig, RoutingAlgo};

        let cfg = NetConfig::synth(4, 1)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
            .with_seed(seed);
        let wl = SyntheticWorkload::new(
            TrafficPattern::UniformRandom, 0.25, 4, 4, cfg.warmup, seed);
        let mech = SeecMechanism::for_net(&cfg);
        let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
        sim.run(12_000);
        let s = sim.finish();
        if s.ff_packets > 0 {
            // Aggregate identity: Σ(buffered + bufferless) over FF packets +
            // Σ network latency over regular packets = Σ network latency.
            prop_assert_eq!(
                s.sum_ff_buffered + s.sum_ff_bufferless + s.sum_regular_latency,
                s.sum_network_latency
            );
        }
    }
}
