//! Workspace-level integration: cross-crate scenarios through the facade.

use seec_repro::baselines::{DrainMechanism, SpinMechanism, SwapMechanism};
use seec_repro::experiments::runner::{run_synth, Scheme, SynthSpec};
use seec_repro::power::{area::router_area, energy::link_energy};
use seec_repro::seec::{MSeecMechanism, SeecMechanism};
use seec_repro::sim::{watchdog, Mechanism, Sim};
use seec_repro::traffic::{SyntheticWorkload, TrafficPattern};
use seec_repro::types::{BaseRouting, NetConfig, RoutingAlgo, SchemeKind};

/// Liveness matrix: every recovery scheme keeps every paper traffic pattern
/// moving on the deadlock-prone single-VC adaptive configuration.
#[test]
fn liveness_matrix_schemes_x_patterns() {
    type MechFactory = fn(&NetConfig) -> Box<dyn Mechanism>;
    let mechs: Vec<(&str, MechFactory)> = vec![
        ("SEEC", |c| Box::new(SeecMechanism::for_net(c))),
        ("mSEEC", |c| Box::new(MSeecMechanism::for_net(c))),
        ("SPIN", |c| Box::new(SpinMechanism::for_net(c))),
        ("SWAP", |c| Box::new(SwapMechanism::for_net(c))),
        ("DRAIN", |c| Box::new(DrainMechanism::for_net(c))),
    ];
    for (name, make) in mechs {
        for pattern in [TrafficPattern::UniformRandom, TrafficPattern::Transpose] {
            let cfg = NetConfig::synth(4, 1)
                .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
                .with_seed(0xBEEF);
            let wl = SyntheticWorkload::new(pattern, 0.25, 4, 4, cfg.warmup, 0xBEEF);
            let mech = make(&cfg);
            let mut sim = Sim::new(cfg, Box::new(wl), mech);
            for _ in 0..25 {
                sim.run(1000);
                assert!(
                    !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
                    "{name} wedged on {} at cycle {}",
                    pattern.label(),
                    sim.net.cycle
                );
            }
            assert!(
                sim.net.stats.ejected_packets_all > 100,
                "{name}/{}: too few deliveries",
                pattern.label()
            );
        }
    }
}

/// Headline claim, end to end: at the same (low) VC budget, SEEC beats the
/// restrictive baselines in saturation-regime latency on uniform random.
#[test]
fn seec_beats_west_first_under_congestion() {
    let rate = 0.16;
    let wf = run_synth(
        SynthSpec::new(4, 2, Scheme::WestFirst, TrafficPattern::UniformRandom, rate)
            .with_cycles(25_000),
    );
    let se = run_synth(
        SynthSpec::new(4, 2, Scheme::seec(), TrafficPattern::UniformRandom, rate)
            .with_cycles(25_000),
    );
    let t_wf = wf.throughput(16);
    let t_se = se.throughput(16);
    assert!(
        t_se >= 0.95 * t_wf,
        "SEEC accepted {t_se:.4} vs WF {t_wf:.4} at rate {rate}"
    );
}

/// The area and energy models agree with the simulator's event counters on a
/// real run (not just synthetic stats).
#[test]
fn power_models_consume_real_runs() {
    let cfg = NetConfig::synth(4, 1);
    let stats = run_synth(
        SynthSpec::new(4, 1, Scheme::seec(), TrafficPattern::UniformRandom, 0.10)
            .with_cycles(10_000),
    );
    let e = link_energy(&stats, &cfg);
    assert!(e.link_total > 0.0);
    assert!(e.sideband_total > 0.0, "SEEC run must show sideband energy");
    assert!(e.link_avg_per_cycle > 0.0);
    // The sideband overhead stays small (paper: <1%; generous bound here).
    assert!(e.sideband_total / e.link_total < 0.15);

    let a = router_area(SchemeKind::Seec, &cfg);
    assert!(a.total() > 0.0 && a.extras > 0.0);
}

/// mSEEC's core invariant holds under stress: the reservation table never
/// sees a collision (it would panic in debug builds), across seeds.
#[test]
fn mseec_ff_paths_never_collide_across_seeds() {
    for seed in 0..5u64 {
        let cfg = NetConfig::synth(4, 1)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
            .with_seed(seed);
        let wl =
            SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.35, 4, 4, cfg.warmup, seed);
        let mech = MSeecMechanism::for_net(&cfg);
        let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
        sim.run(15_000); // debug_assert in ReservationTable::reserve guards
        assert!(sim.net.stats.ff_packets > 0, "seed {seed}: no FF traffic");
    }
}

/// Escape VC + SEEC compose: SEEC layered over the escape-VC router still
/// delivers (the paper's SEEC-EscVC variant in Fig 15).
#[test]
fn seec_composes_with_escape_vc_routing() {
    let cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        })
        .with_seed(5);
    let wl = SyntheticWorkload::new(TrafficPattern::Transpose, 0.10, 4, 4, cfg.warmup, 5);
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(20_000);
    let s = sim.finish();
    assert!(s.ejected_packets > 500, "only {}", s.ejected_packets);
}
