//! Executor determinism gate: a sweep run on the parallel executor must be
//! bit-identical to the same sweep run sequentially. Every design point owns
//! its RNG (seeded from the spec), so the thread count can only change
//! wall-clock time — this test pins that property at the figure level.
//!
//! CI additionally diffs full `fig08 --quick` / `fig09 --quick` outputs
//! across `NOC_THREADS=1` and `NOC_THREADS=8` processes; this in-process
//! test keeps the gate in `cargo test`.

use seec_repro::experiments::figs::fig08;
use seec_repro::traffic::TrafficPattern;

/// The executor budget is process-global, so sequential and parallel runs
/// live in one test (cargo runs `#[test]` fns of a binary concurrently).
#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    for pattern in [TrafficPattern::UniformRandom, TrafficPattern::Transpose] {
        rayon::set_num_threads(1);
        let sequential = fig08::panel(pattern, 4, true).to_string();
        rayon::set_num_threads(8);
        let parallel = fig08::panel(pattern, 4, true).to_string();
        assert_eq!(
            sequential,
            parallel,
            "thread count changed {} results",
            pattern.label()
        );
    }
}
