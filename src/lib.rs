//! Facade crate for the SEEC reproduction workspace.
//!
//! Re-exports every member crate so the workspace-level examples and
//! integration tests (and downstream users who want a single dependency) can
//! reach the whole system through one import.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use noc_baselines as baselines;
pub use noc_experiments as experiments;
pub use noc_power as power;
pub use noc_protocol as protocol;
pub use noc_sim as sim;
pub use noc_traffic as traffic;
pub use noc_types as types;
pub use seec;
